#include "serve/server.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "geostat/kernel_registry.hpp"
#include "obs/export_prom.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace gsx::serve {

namespace {

/// write() the whole buffer, tolerating short writes and EINTR.
bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

JsonValue stats_to_json(const RegistryStats& r, const EngineStats& e) {
  JsonValue::Object reg;
  reg["models"] = JsonValue(r.models);
  reg["resident_bytes"] = JsonValue(r.resident_bytes);
  reg["capacity_bytes"] = JsonValue(r.capacity_bytes);
  reg["hits"] = JsonValue(static_cast<std::size_t>(r.hits));
  reg["misses"] = JsonValue(static_cast<std::size_t>(r.misses));
  reg["loads"] = JsonValue(static_cast<std::size_t>(r.loads));
  reg["evictions"] = JsonValue(static_cast<std::size_t>(r.evictions));

  JsonValue::Object eng;
  eng["accepted"] = JsonValue(static_cast<std::size_t>(e.accepted));
  eng["completed"] = JsonValue(static_cast<std::size_t>(e.completed));
  eng["rejected_queue_full"] = JsonValue(static_cast<std::size_t>(e.rejected_queue_full));
  eng["rejected_deadline"] = JsonValue(static_cast<std::size_t>(e.rejected_deadline));
  eng["batches"] = JsonValue(static_cast<std::size_t>(e.batches));
  eng["batched_points"] = JsonValue(static_cast<std::size_t>(e.batched_points));
  eng["queue_depth"] = JsonValue(e.queue_depth);

  JsonValue::Object o;
  o["ok"] = JsonValue(true);
  o["registry"] = JsonValue(std::move(reg));
  o["engine"] = JsonValue(std::move(eng));
  return JsonValue(std::move(o));
}

const std::string& require_string(const JsonValue& req, const std::string& key) {
  const JsonValue* v = req.find(key);
  GSX_REQUIRE(v != nullptr && v->is_string(),
              "request needs a string \"" + key + "\" field");
  return v->as_string();
}

}  // namespace

Server::Server(ServerConfig cfg)
    : cfg_(cfg),
      registry_(cfg.cache_bytes),
      engine_(EngineConfig{cfg.workers, cfg.queue_capacity, cfg.max_batch_points}) {
  // Pre-register the serving metrics so a scrape sees the full schema (zeroed
  // series included) before the first request, not a shape that grows as
  // traffic happens to exercise code paths.
  auto& reg = obs::Registry::instance();
  reg.gauge("serve.queue.depth");
  reg.gauge("serve.cache.bytes");
  reg.gauge("serve.cache.models");
  reg.gauge("taskgraph.queue_depth");
  reg.counter("serve.cache.hits");
  reg.counter("serve.cache.misses");
  reg.counter("serve.cache.evictions");
  reg.counter("serve.rejected.queue_full");
  reg.counter("serve.rejected.deadline");
  reg.histogram("serve.predict.seconds", obs::Histogram::duration_bounds());
  reg.histogram("serve.queue.seconds", obs::Histogram::duration_bounds());
  reg.histogram("serve.batch.points");
}

Server::~Server() {
  shutdown();
}

std::string Server::handle_line(const std::string& line) {
  try {
    const JsonValue req = JsonValue::parse(line);
    GSX_REQUIRE(req.is_object(), "request must be a JSON object");
    return handle_request(req);
  } catch (const std::exception& e) {
    return wire_error(e.what());
  }
}

std::string Server::handle_request(const JsonValue& req) {
  const std::string& op = require_string(req, "op");
  if (op == "load") return do_load(req);
  if (op == "unload") return do_unload(req);
  if (op == "predict") return do_predict(req);
  if (op == "stats") return do_stats();
  if (op == "health") return do_health();
  if (op == "metrics") return do_metrics();
  return wire_error("unknown op \"" + op + "\"");
}

std::string Server::do_load(const JsonValue& req) {
  const std::string& name = require_string(req, "name");
  const std::string& path = require_string(req, "path");
  const std::shared_ptr<const LoadedModel> model = registry_.load(name, path);
  JsonValue::Object o;
  o["ok"] = JsonValue(true);
  o["name"] = JsonValue(model->name);
  o["kernel"] = JsonValue(geostat::kernel_name(*model->kernel));
  o["n_train"] = JsonValue(model->train_locs.size());
  o["resident_bytes"] = JsonValue(model->resident_bytes);
  return JsonValue(std::move(o)).dump();
}

std::string Server::do_unload(const JsonValue& req) {
  const std::string& name = require_string(req, "name");
  const bool removed = registry_.unload(name);
  JsonValue::Object o;
  o["ok"] = JsonValue(true);
  o["unloaded"] = JsonValue(removed);
  return JsonValue(std::move(o)).dump();
}

std::string Server::do_predict(const JsonValue& req) {
  const std::string& name = require_string(req, "model");
  std::shared_ptr<const LoadedModel> model = registry_.get(name);
  if (model == nullptr) return wire_error("no such model \"" + name + "\"");

  const JsonValue* pts = req.find("points");
  GSX_REQUIRE(pts != nullptr && pts->is_array() && !pts->as_array().empty(),
              "request needs a non-empty \"points\" array");
  std::vector<geostat::Location> points;
  points.reserve(pts->as_array().size());
  for (const JsonValue& p : pts->as_array()) {
    GSX_REQUIRE(p.is_array() && (p.as_array().size() == 2 || p.as_array().size() == 3),
                "each point must be [x,y] or [x,y,t]");
    geostat::Location loc;
    loc.x = p.as_array()[0].as_number();
    loc.y = p.as_array()[1].as_number();
    if (p.as_array().size() == 3) loc.t = p.as_array()[2].as_number();
    points.push_back(loc);
  }

  bool with_variance = true;
  if (const JsonValue* v = req.find("variance")) with_variance = v->as_bool();

  double deadline_seconds = cfg_.default_deadline_seconds;
  if (const JsonValue* d = req.find("deadline_ms")) {
    GSX_REQUIRE(d->is_number() && d->as_number() > 0, "\"deadline_ms\" must be > 0");
    deadline_seconds = d->as_number() / 1000.0;
  }
  const auto deadline =
      KrigingEngine::Clock::now() +
      std::chrono::duration_cast<KrigingEngine::Clock::duration>(
          std::chrono::duration<double>(deadline_seconds));

  // The request id is minted here at the wire boundary so rejects, flight
  // events, spans and the response all agree on one name for this request.
  const std::uint64_t request_id = mint_request_id();
  PredictOutcome out = engine_
                           .submit(std::move(model), std::move(points), with_variance,
                                   deadline, request_id)
                           .get();
  if (!out.ok) {
    JsonValue::Object o;
    o["ok"] = JsonValue(false);
    o["error"] = JsonValue(out.error);
    o["request_id"] = JsonValue(request_id_string(request_id));
    if (!out.flight_dump.empty()) o["flight_dump"] = JsonValue(out.flight_dump);
    return JsonValue(std::move(o)).dump();
  }

  JsonValue::Array mean;
  mean.reserve(out.mean.size());
  for (const double m : out.mean) mean.emplace_back(m);
  JsonValue::Object o;
  o["ok"] = JsonValue(true);
  o["request_id"] = JsonValue(request_id_string(request_id));
  o["mean"] = JsonValue(std::move(mean));
  if (with_variance) {
    JsonValue::Array variance;
    variance.reserve(out.variance.size());
    for (const double v : out.variance) variance.emplace_back(v);
    o["variance"] = JsonValue(std::move(variance));
  }
  o["batched_with"] = JsonValue(out.batched_with);
  o["queue_seconds"] = JsonValue(out.queue_seconds);
  o["total_seconds"] = JsonValue(out.total_seconds);
  JsonValue::Object timing;
  timing["queue_seconds"] = JsonValue(out.queue_seconds);
  timing["assemble_seconds"] = JsonValue(out.assemble_seconds);
  timing["solve_seconds"] = JsonValue(out.solve_seconds);
  timing["total_seconds"] = JsonValue(out.total_seconds);
  o["timing"] = JsonValue(std::move(timing));
  return JsonValue(std::move(o)).dump();
}

std::string Server::do_stats() {
  return stats_to_json(registry_.stats(), engine_.stats()).dump();
}

std::string Server::do_metrics() {
  JsonValue::Object o;
  o["ok"] = JsonValue(true);
  o["content_type"] = JsonValue(obs::kPrometheusContentType);
  o["prometheus"] = JsonValue(obs::render_prometheus());
  return JsonValue(std::move(o)).dump();
}

std::string Server::do_health() {
  const RegistryStats r = registry_.stats();
  const EngineStats e = engine_.stats();
  JsonValue::Object o;
  o["ok"] = JsonValue(true);
  o["status"] = JsonValue(stopping_.load(std::memory_order_acquire) ? "draining"
                                                                    : "serving");
  o["models"] = JsonValue(r.models);
  o["queue_depth"] = JsonValue(e.queue_depth);
  return JsonValue(std::move(o)).dump();
}

std::uint16_t Server::listen() {
  GSX_REQUIRE(listen_fd_ < 0, "Server::listen: already listening");
  std::uint16_t bound_port = 0;
  if (!cfg_.unix_path.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    GSX_REQUIRE(listen_fd_ >= 0, "socket(AF_UNIX) failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    GSX_REQUIRE(cfg_.unix_path.size() < sizeof(addr.sun_path),
                "unix socket path too long");
    std::strncpy(addr.sun_path, cfg_.unix_path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(cfg_.unix_path.c_str());  // stale socket from a previous run
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw InvalidArgument("bind(" + cfg_.unix_path + ") failed: " +
                            std::strerror(errno));
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    GSX_REQUIRE(listen_fd_ >= 0, "socket(AF_INET) failed");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // serving is local-only
    addr.sin_port = htons(cfg_.tcp_port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw InvalidArgument(std::string("bind(127.0.0.1) failed: ") +
                            std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    bound_port = ntohs(bound.sin_port);
  }
  GSX_REQUIRE(::listen(listen_fd_, 64) == 0, "listen() failed");
  running_.store(true, std::memory_order_release);
  if (cfg_.metrics_port >= 0) start_metrics_listener();
  obs::log_info("serve", "listening",
                {obs::lf("endpoint", cfg_.unix_path.empty()
                                         ? "127.0.0.1:" + std::to_string(bound_port)
                                         : cfg_.unix_path)});
  return bound_port;
}

void Server::start_metrics_listener() {
  metrics_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  GSX_REQUIRE(metrics_fd_ >= 0, "socket(AF_INET) for metrics failed");
  const int one = 1;
  ::setsockopt(metrics_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.metrics_port));
  if (::bind(metrics_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(metrics_fd_, 16) != 0) {
    const int saved = errno;
    ::close(metrics_fd_);
    metrics_fd_ = -1;
    throw InvalidArgument(std::string("metrics bind(127.0.0.1:") +
                          std::to_string(cfg_.metrics_port) +
                          ") failed: " + std::strerror(saved));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(metrics_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  metrics_port_ = ntohs(bound.sin_port);
  metrics_thread_ = std::thread([this] { metrics_loop(); });
  obs::log_info("serve", "metrics scrape endpoint listening",
                {obs::lf("endpoint", "127.0.0.1:" + std::to_string(metrics_port_))});
}

void Server::metrics_loop() {
  // Deliberately minimal HTTP/1.0: one request per connection, close after
  // the response. A Prometheus scraper needs nothing more, and anything more
  // would drag a web server into the serving daemon.
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(metrics_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // metrics fd closed by shutdown(), or fatal error
    }
    char buf[2048];
    std::string request;
    while (request.find("\r\n\r\n") == std::string::npos &&
           request.size() < std::size_t{16} * 1024) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      request.append(buf, static_cast<std::size_t>(n));
    }
    const bool get_root = request.rfind("GET / ", 0) == 0;
    const bool get_metrics = request.rfind("GET /metrics", 0) == 0;
    std::string response;
    if (get_root || get_metrics) {
      const std::string body = obs::render_prometheus();
      response = "HTTP/1.0 200 OK\r\nContent-Type: " +
                 std::string(obs::kPrometheusContentType) +
                 "\r\nContent-Length: " + std::to_string(body.size()) +
                 "\r\nConnection: close\r\n\r\n" + body;
    } else {
      response =
          "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\nConnection: close\r\n\r\n";
    }
    write_all(fd, response.data(), response.size());
    ::close(fd);
  }
}

void Server::serve_forever() {
  GSX_REQUIRE(listen_fd_ >= 0, "Server::serve_forever: call listen() first");
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen fd closed by shutdown(), or fatal error
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lk(conn_mu_);
    reap_finished_locked();
    conn_fds_.insert(fd);
    conn_threads_.emplace_back([this, fd] { connection_loop(fd); });
  }
  running_.store(false, std::memory_order_release);
}

void Server::connection_loop(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !stopping_.load(std::memory_order_acquire)) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t nl;
    while (open && (nl = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (line.empty()) continue;
      std::string response = handle_line(line);
      response.push_back('\n');
      open = write_all(fd, response.data(), response.size());
    }
  }
  {
    std::lock_guard lk(conn_mu_);
    conn_fds_.erase(fd);
    finished_ids_.insert(std::this_thread::get_id());
  }
  ::close(fd);
}

void Server::reap_finished_locked() {
  // Bounded housekeeping: connection threads mark themselves finished on the
  // way out, so joining here never blocks on a live connection (the marked
  // thread has nothing left to run but close() + return).
  if (finished_ids_.empty()) return;
  auto it = conn_threads_.begin();
  while (it != conn_threads_.end()) {
    const std::thread::id id = it->get_id();
    if (finished_ids_.count(id) != 0) {
      it->join();
      finished_ids_.erase(id);
      it = conn_threads_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::shutdown() {
  stopping_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);  // wakes accept()
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (metrics_fd_ >= 0) {
    ::shutdown(metrics_fd_, SHUT_RDWR);  // wakes the metrics accept()
    ::close(metrics_fd_);
    metrics_fd_ = -1;
  }
  if (metrics_thread_.joinable()) metrics_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard lk(conn_mu_);
    // Wake connection threads blocked in read(); they close their own fds.
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(conn_threads_);
    finished_ids_.clear();
  }
  for (std::thread& t : threads)
    if (t.joinable()) t.join();
  engine_.drain();
  if (!cfg_.unix_path.empty()) ::unlink(cfg_.unix_path.c_str());
  running_.store(false, std::memory_order_release);
}

}  // namespace gsx::serve
