// Serving front end: the request handler plus a POSIX socket listener.
//
// The wire protocol is newline-delimited JSON — one request object per line,
// one response object per line, over a Unix-domain or TCP socket. Verbs:
//
//   {"op":"load","name":"era5","path":"/models/era5.ckpt"}
//   {"op":"unload","name":"era5"}
//   {"op":"predict","model":"era5","points":[[x,y],[x,y,t],...],
//    "variance":true,"deadline_ms":250}
//   {"op":"stats"}
//   {"op":"health"}
//   {"op":"metrics"}
//
// Every response carries "ok"; failures add "error". handle_line() is the
// whole protocol — the daemon's connection threads and the in-process tests
// both drive it, so the socket layer stays a thin framing loop.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/engine.hpp"
#include "serve/registry.hpp"
#include "serve/wire.hpp"

namespace gsx::serve {

struct ServerConfig {
  std::string unix_path;              ///< Unix-domain socket path ("" = use TCP)
  std::uint16_t tcp_port = 0;         ///< TCP port on 127.0.0.1 (0 = ephemeral)
  std::size_t workers = 1;            ///< solver threads per batch
  std::size_t queue_capacity = 256;   ///< engine admission bound
  std::size_t max_batch_points = 8192;
  std::size_t cache_bytes = std::size_t{1} << 30;  ///< factor-cache capacity
  double default_deadline_seconds = 30.0;  ///< applied when a request sends none
  int metrics_port = -1;  ///< Prometheus HTTP scrape port on 127.0.0.1
                          ///< (-1 = off, 0 = ephemeral); started by listen()
};

/// Request handler + listener. Construct, optionally pre-load models through
/// registry(), then listen()/serve_forever(); or skip the socket entirely and
/// call handle_line() directly (tests, embedding).
class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Handle one request line, return one response line (no trailing '\n').
  /// Never throws: protocol and engine errors become {"ok":false,...}.
  std::string handle_line(const std::string& line);

  /// Bind + listen on the configured socket. Returns the bound TCP port
  /// (useful with tcp_port = 0), or 0 for Unix sockets.
  std::uint16_t listen();

  /// Accept loop; returns after shutdown() (or a fatal accept error).
  void serve_forever();

  /// Graceful drain: stop accepting, wake the accept loop, finish queued
  /// predictions, join connection threads. Safe from a signal-watcher thread.
  void shutdown();

  [[nodiscard]] bool running() const { return running_.load(std::memory_order_acquire); }

  /// Bound port of the Prometheus scrape listener (0 until listen() starts
  /// it, or when cfg.metrics_port is -1).
  [[nodiscard]] std::uint16_t metrics_port() const { return metrics_port_; }

  ModelRegistry& registry() { return registry_; }
  KrigingEngine& engine() { return engine_; }

 private:
  std::string handle_request(const JsonValue& req);
  std::string do_load(const JsonValue& req);
  std::string do_unload(const JsonValue& req);
  std::string do_predict(const JsonValue& req);
  std::string do_stats();
  std::string do_health();
  std::string do_metrics();

  void start_metrics_listener();
  void metrics_loop();
  void connection_loop(int fd);
  void reap_finished_locked();

  const ServerConfig cfg_;
  ModelRegistry registry_;
  KrigingEngine engine_;

  int listen_fd_ = -1;
  int metrics_fd_ = -1;
  std::uint16_t metrics_port_ = 0;
  std::thread metrics_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> connections_{0};
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::set<int> conn_fds_;
  std::set<std::thread::id> finished_ids_;
};

}  // namespace gsx::serve
