// Serving front end: the replica request handler on top of the shared
// LineListener socket machinery (serve/listener.hpp).
//
// The wire protocol is newline-delimited JSON — one request object per line,
// one response object per line, over a Unix-domain or TCP socket. Verbs
// (the authoritative table is server_verbs() in serve/wire.cpp):
//
//   {"op":"load","name":"era5","path":"/models/era5.ckpt"}
//   {"op":"load","name":"era5"}                  // resolve from --store
//   {"op":"unload","name":"era5"}
//   {"op":"predict","model":"era5","points":[[x,y],[x,y,t],...],
//    "variance":true,"deadline_ms":250,"request_id":"r-17"}
//   {"op":"stats"}
//   {"op":"health"}
//   {"op":"metrics"}
//   {"op":"flight"}    // flight-recorder JSONL snapshot (fleet post-mortems)
//   {"op":"drain"}
//
// Every response carries "ok"; failures add "error". handle_line() is the
// whole protocol — the daemon's connection threads and the in-process tests
// both drive it, so the socket layer stays a thin framing loop.
//
// "drain" starts a graceful shutdown on a background thread and answers
// immediately: the listener stops accepting, in-flight requests finish and
// flush their responses (SHUT_RD, never SHUT_RDWR, on connection sockets),
// and the engine completes everything already queued. Zero requests are
// dropped. A fleet router drains replicas this way to hot-swap them.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "serve/engine.hpp"
#include "serve/listener.hpp"
#include "serve/registry.hpp"
#include "serve/wire.hpp"

namespace gsx::serve {

struct ServerConfig {
  std::string unix_path;              ///< Unix-domain socket path ("" = use TCP)
  std::uint16_t tcp_port = 0;         ///< TCP port on 127.0.0.1 (0 = ephemeral)
  std::size_t workers = 1;            ///< solver threads per batch
  std::size_t queue_capacity = 256;   ///< engine admission bound
  std::size_t max_batch_points = 8192;
  std::size_t cache_bytes = std::size_t{1} << 30;  ///< factor-cache capacity
  double default_deadline_seconds = 30.0;  ///< applied when a request sends none
  int metrics_port = -1;  ///< Prometheus HTTP scrape port on 127.0.0.1
                          ///< (-1 = off, 0 = ephemeral); started by listen()
  std::string store_dir;  ///< shared checkpoint store; "" disables store
                          ///< resolution ("load" then requires "path")
};

/// Request handler + listener. Construct, optionally pre-load models through
/// registry(), then listen()/serve_forever(); or skip the socket entirely and
/// call handle_line() directly (tests, embedding).
class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Handle one request line, return one response line (no trailing '\n').
  /// Never throws: protocol and engine errors become {"ok":false,...}.
  std::string handle_line(const std::string& line);

  /// Bind + listen on the configured socket. Returns the bound TCP port
  /// (useful with tcp_port = 0), or 0 for Unix sockets.
  std::uint16_t listen();

  /// Accept loop; returns after shutdown() (or a fatal accept error).
  void serve_forever();

  /// Graceful drain: stop accepting, finish in-flight requests (responses
  /// still flush), complete queued predictions, join connection threads.
  /// Safe from a signal-watcher thread; idempotent.
  void shutdown();

  [[nodiscard]] bool running() const { return listener_.running(); }

  /// True once a "drain" verb (or shutdown()) was seen; health reports
  /// "draining" from that point on.
  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  /// Bound port of the Prometheus scrape listener (0 until listen() starts
  /// it, or when cfg.metrics_port is -1).
  [[nodiscard]] std::uint16_t metrics_port() const {
    return listener_.metrics_port();
  }

  /// Hook invoked (once) when the "drain" verb arrives, instead of the
  /// default in-process shutdown(). The daemon wires this to its signal
  /// pipe so a wire-initiated drain and a SIGTERM share one exit path.
  void set_on_drain(std::function<void()> hook) { on_drain_ = std::move(hook); }

  ModelRegistry& registry() { return registry_; }
  KrigingEngine& engine() { return engine_; }

 private:
  std::string handle_request(const JsonValue& req);
  std::string do_load(const JsonValue& req);
  std::string do_unload(const JsonValue& req);
  std::string do_predict(const JsonValue& req);
  std::string do_stats();
  std::string do_health();
  std::string do_metrics();
  std::string do_flight();
  std::string do_drain();

  const ServerConfig cfg_;
  ModelRegistry registry_;
  KrigingEngine engine_;
  LineListener listener_;

  std::function<void()> on_drain_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> drain_started_{false};
  std::thread drain_thread_;
};

}  // namespace gsx::serve
