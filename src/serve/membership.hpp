// Fleet membership: the router-side replica table plus the consistent-hash
// ring that assigns model names to replicas, and the replica-side announcer
// that registers and heartbeats over the NDJSON wire.
//
// Ownership is a classic consistent-hash ring (each replica contributes
// `virtual_nodes` points keyed by a 64-bit hash of "name#i"; a model is
// owned by the first routable point clockwise of hash(model)). The ring
// depends only on the set of replica names — never on join order — so every
// router instance, and a router across restarts, agrees on placement, and
// adding or removing one replica moves only ~1/N of the models.
//
// A replica is routable while Alive with a fresh heartbeat. Draining and
// Dead replicas stay in the table (operators want to see them in `stats`)
// but receive no new work; a stale heartbeat (age > stale_after) demotes
// Alive -> Dead on the next expire_stale() sweep. Every change to the
// routable set counts as one rehash event.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace gsx::serve {

enum class ReplicaState : unsigned char { Alive, Draining, Dead };

[[nodiscard]] const char* replica_state_name(ReplicaState s) noexcept;

/// One replica as the router sees it. `host` is informational (the fleet is
/// loopback-only); `port` is the replica's NDJSON listener.
struct ReplicaInfo {
  std::string name;
  std::string host;
  std::uint16_t port = 0;
  ReplicaState state = ReplicaState::Alive;
  double heartbeat_age_seconds = 0.0;  ///< snapshot-relative
  std::uint64_t heartbeats = 0;        ///< register + heartbeat count
  double queue_depth = 0.0;            ///< last reported by the replica
  double inflight = 0.0;               ///< predicts inside a solver pass —
                                       ///< queue_depth alone under-reports
                                       ///< load during micro-batched solves
};

/// What a replica reports about its own load on every heartbeat.
struct ReplicaLoad {
  double queue_depth = 0.0;  ///< engine admission-queue depth
  double inflight = 0.0;     ///< predicts currently inside a solver pass
};

/// 64-bit mixing hash (splitmix64 over FNV-1a). Exposed so tests can assert
/// ring placement independently of the Membership internals.
[[nodiscard]] std::uint64_t fleet_hash(const std::string& key) noexcept;

class Membership {
 public:
  using Clock = std::chrono::steady_clock;

  explicit Membership(double stale_after_seconds = 10.0,
                      std::size_t virtual_nodes = 64);

  /// Register (or re-register) a replica as Alive with a fresh heartbeat.
  /// Returns true when the routable set changed (new replica, or a Draining/
  /// Dead one coming back).
  bool join(const std::string& name, const std::string& host, std::uint16_t port,
            Clock::time_point now = Clock::now());

  /// Refresh a replica's heartbeat + reported load (queue depth and
  /// in-flight predict count). Returns false for an unknown name (the
  /// replica should re-register). A heartbeat does NOT resurrect a Dead or
  /// Draining replica — only join() does, so a replica that missed the
  /// stale window must re-announce itself.
  bool heartbeat(const std::string& name, double queue_depth,
                 double inflight = 0.0, Clock::time_point now = Clock::now());
  bool heartbeat(const std::string& name, double queue_depth,
                 Clock::time_point now) {
    return heartbeat(name, queue_depth, 0.0, now);
  }

  /// Mark Draining: keeps the replica in the table, removes it from the
  /// ring's routable set. Returns false for an unknown name.
  bool drain(const std::string& name);

  /// Mark Dead (failed forward, kill detection). Returns false when unknown
  /// or already Dead.
  bool mark_dead(const std::string& name);

  bool erase(const std::string& name);

  /// Demote Alive replicas whose heartbeat age exceeds stale_after to Dead.
  /// Returns how many were demoted (each is one rehash event).
  std::size_t expire_stale(Clock::time_point now = Clock::now());

  /// Consistent-hash owner of `model`: the first Alive, heartbeat-fresh ring
  /// point clockwise of fleet_hash(model). nullopt when nothing is routable.
  [[nodiscard]] std::optional<ReplicaInfo> owner(
      const std::string& model, Clock::time_point now = Clock::now()) const;

  [[nodiscard]] std::vector<ReplicaInfo> snapshot(
      Clock::time_point now = Clock::now()) const;

  /// Routable (Alive, fresh) replica count.
  [[nodiscard]] std::size_t alive_count(Clock::time_point now = Clock::now()) const;

  /// Cumulative changes to the routable set (joins, deaths, drains,
  /// stale expiries).
  [[nodiscard]] std::uint64_t rehash_events() const noexcept;

  [[nodiscard]] double stale_after_seconds() const noexcept { return stale_after_; }

 private:
  struct Entry {
    std::string host;
    std::uint16_t port = 0;
    ReplicaState state = ReplicaState::Alive;
    Clock::time_point last_heartbeat{};
    std::uint64_t heartbeats = 0;
    double queue_depth = 0.0;
    double inflight = 0.0;
  };
  struct RingPoint {
    std::uint64_t hash = 0;
    std::size_t entry = 0;  ///< index into names_/entries-by-name order
  };

  void rebuild_ring_locked();
  [[nodiscard]] bool routable_locked(const Entry& e, Clock::time_point now) const;
  [[nodiscard]] ReplicaInfo info_locked(const std::string& name, const Entry& e,
                                        Clock::time_point now) const;

  const double stale_after_;
  const std::size_t virtual_nodes_;
  mutable std::mutex mu_;
  std::vector<std::string> names_;              ///< sorted; index = RingPoint::entry
  std::vector<Entry> entries_;                  ///< parallel to names_
  std::vector<RingPoint> ring_;                 ///< sorted by hash
  std::atomic<std::uint64_t> rehash_events_{0};
};

/// Replica-side fleet membership: dials the router, registers this replica's
/// endpoint, then heartbeats on a background thread until stopped. Lost
/// router connections are re-dialed (and re-registered) with backoff — a
/// router restart heals itself.
class Announcer {
 public:
  struct Config {
    std::string router_host = "127.0.0.1";
    std::uint16_t router_port = 0;
    std::string replica_name;
    std::string replica_host = "127.0.0.1";
    std::uint16_t replica_port = 0;       ///< this replica's NDJSON port
    double heartbeat_seconds = 2.0;
  };

  /// `load` is polled at each heartbeat (queue depth + in-flight predicts,
  /// reported to the router). Each heartbeat carries a sequence number and
  /// records HeartbeatSend/HeartbeatAck flight events — paired with the
  /// router's HeartbeatRecv, they are the clock-offset datum for gsx_obs.
  Announcer(Config cfg, std::function<ReplicaLoad()> load);
  ~Announcer();

  Announcer(const Announcer&) = delete;
  Announcer& operator=(const Announcer&) = delete;

  void start();
  /// Sends the goodbye and joins the heartbeat thread. Idempotent and safe
  /// under concurrent callers (signal watcher vs. main shutdown path).
  void stop();

  /// Heartbeats successfully delivered (register replies included).
  [[nodiscard]] std::uint64_t delivered() const noexcept {
    return delivered_.load(std::memory_order_relaxed);
  }

 private:
  void loop();

  const Config cfg_;
  const std::function<ReplicaLoad()> load_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> delivered_{0};
  std::mutex mu_;
  std::mutex stop_mu_;  // serializes concurrent stop() callers around join
  std::condition_variable cv_;
  std::thread thread_;
};

}  // namespace gsx::serve
