// Shared socket machinery for the NDJSON daemons (gsx_serve, gsx_router).
//
// LineListener owns the accept loop, per-connection threads, newline framing
// and the optional Prometheus HTTP scrape listener; the protocol itself is a
// single handler callback (one request line in, one response line out). The
// replica server and the fleet router both sit on top of this, so framing,
// drain semantics and scrape plumbing exist exactly once.
//
// WireClient is the matching client side: dial a TCP or Unix endpoint, send
// one line, read one line. The router's forwarding pool, the replica's
// announcer thread and the tests all use it.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace gsx::serve {

class LineListener {
 public:
  struct Config {
    std::string unix_path;       ///< Unix-domain socket path ("" = use TCP)
    std::uint16_t tcp_port = 0;  ///< TCP port on 127.0.0.1 (0 = ephemeral)
    int metrics_port = -1;       ///< Prometheus HTTP scrape port on 127.0.0.1
                                 ///< (-1 = off, 0 = ephemeral)
    std::string log_tag = "serve";  ///< obs logging module tag
    /// Exposition body served on the scrape port. Defaults to the local
    /// registry (obs::render_prometheus); the fleet router overrides it
    /// with the federated union so one scrape target covers the fleet.
    /// Called from the metrics thread — must be thread-safe.
    std::function<std::string()> metrics_renderer;
  };

  /// Handle one request line, return one response line (no trailing '\n').
  /// Called from connection threads; must be thread-safe and never throw.
  using Handler = std::function<std::string(const std::string&)>;

  LineListener(Config cfg, Handler handler);
  ~LineListener();

  LineListener(const LineListener&) = delete;
  LineListener& operator=(const LineListener&) = delete;

  /// Bind + listen on the configured socket; also starts the metrics scrape
  /// listener when configured. Returns the bound TCP port (useful with
  /// tcp_port = 0), or 0 for Unix sockets.
  std::uint16_t listen();

  /// Accept loop; returns after shutdown() (or a fatal accept error).
  void serve_forever();

  /// Graceful drain: stop accepting, wake connection threads blocked in
  /// read() (SHUT_RD — a thread mid-request still flushes its response),
  /// join them. Thread-safe and idempotent; callable from a handler-spawned
  /// thread or a signal-watcher thread.
  void shutdown();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  /// Bound port of the Prometheus scrape listener (0 until listen() starts
  /// it, or when cfg.metrics_port is -1).
  [[nodiscard]] std::uint16_t metrics_port() const { return metrics_port_; }

 private:
  void start_metrics_listener();
  void metrics_loop();
  void connection_loop(int fd);
  void reap_finished_locked();

  const Config cfg_;
  const Handler handler_;

  // Atomic: shutdown() stores -1 from a watcher/handler thread while the
  // accept loops read the fd (tsan-visible race on a plain int).
  std::atomic<int> listen_fd_{-1};
  std::atomic<int> metrics_fd_{-1};
  std::uint16_t metrics_port_ = 0;
  std::thread metrics_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::mutex shutdown_mu_;  ///< serializes concurrent shutdown() callers
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::set<int> conn_fds_;
  std::set<std::thread::id> finished_ids_;
};

/// Blocking one-line-per-request client over TCP (host:port) or a Unix
/// socket path. Not thread-safe; callers serialize access per instance.
class WireClient {
 public:
  WireClient() = default;
  ~WireClient();

  WireClient(WireClient&& other) noexcept;
  WireClient& operator=(WireClient&& other) noexcept;
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Connect to 127.0.0.1:port (host is kept for error text only) or to a
  /// Unix-domain socket path. Returns false on failure (errno preserved).
  bool dial_tcp(const std::string& host, std::uint16_t port);
  bool dial_unix(const std::string& path);

  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void close();

  /// Send `line` (newline appended) and read one response line. Returns
  /// false — and closes the connection — on any I/O failure or EOF.
  bool request(const std::string& line, std::string* response);

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes past the last consumed newline
};

/// write() the whole buffer, tolerating short writes and EINTR.
bool write_all(int fd, const char* data, std::size_t size);

}  // namespace gsx::serve
