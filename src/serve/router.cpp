#include "serve/router.hpp"

#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "obs/export_prom.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gsx::serve {

namespace {

const std::string& require_string(const JsonValue& req, const std::string& key) {
  const JsonValue* v = req.find(key);
  GSX_REQUIRE(v != nullptr && v->is_string(),
              "request needs a string \"" + key + "\" field");
  return v->as_string();
}

}  // namespace

Router::Router(RouterConfig cfg)
    : cfg_(cfg),
      membership_(cfg.stale_after_seconds, cfg.virtual_nodes),
      listener_(
          LineListener::Config{"", cfg.tcp_port, cfg.metrics_port, "router"},
          [this](const std::string& line) { return handle_line(line); }) {
  // Pre-register the router metric schema (see Server's constructor for the
  // rationale). Per-replica request counters are keyed by replica name and
  // appear on first forward.
  auto& reg = obs::Registry::instance();
  reg.counter("router.rehash_events");
  reg.counter("router.forwards");
  reg.counter("router.forward.failures");
  reg.counter("router.failover.loads");
  reg.gauge("router.replicas.alive");
  reg.gauge("router.heartbeat.age.max_seconds");
  reg.histogram("router.forward.seconds", obs::Histogram::duration_bounds());
}

Router::~Router() {
  shutdown();
  if (drain_thread_.joinable()) drain_thread_.join();
}

std::string Router::handle_line(const std::string& line) {
  try {
    const JsonValue req = JsonValue::parse(line);
    GSX_REQUIRE(req.is_object(), "request must be a JSON object");
    return handle_request(req);
  } catch (const std::exception& e) {
    return wire_error(e.what());
  }
}

std::string Router::handle_request(const JsonValue& req) {
  const std::string& op = require_string(req, "op");
  if (op == "register") return do_register(req);
  if (op == "heartbeat") return do_heartbeat(req);
  if (op == "drain") return do_drain(req);
  if (op == "load") return do_forward_by_name(req, "load");
  if (op == "unload") return do_forward_by_name(req, "unload");
  if (op == "predict") return do_predict(req);
  if (op == "stats") return do_stats();
  if (op == "health") return do_health();
  if (op == "metrics") return do_metrics();
  return wire_error("unknown op \"" + op + "\"");
}

std::string Router::do_register(const JsonValue& req) {
  const std::string& name = require_string(req, "replica");
  const JsonValue* port = req.find("port");
  GSX_REQUIRE(port != nullptr && port->is_number() && port->as_number() > 0 &&
                  port->as_number() < 65536,
              "register needs a \"port\" in (0, 65536)");
  std::string host = "127.0.0.1";
  if (const JsonValue* h = req.find("host"))
    if (h->is_string()) host = h->as_string();
  const bool rehashed = membership_.join(
      name, host, static_cast<std::uint16_t>(port->as_number()));
  JsonValue::Object o;
  o["ok"] = JsonValue(true);
  o["rehashed"] = JsonValue(rehashed);
  return JsonValue(std::move(o)).dump();
}

std::string Router::do_heartbeat(const JsonValue& req) {
  const std::string& name = require_string(req, "replica");
  double queue_depth = 0.0;
  if (const JsonValue* q = req.find("queue_depth"))
    if (q->is_number()) queue_depth = q->as_number();
  if (!membership_.heartbeat(name, queue_depth))
    return wire_error("unknown or non-alive replica \"" + name +
                      "\" — re-register");
  JsonValue::Object o;
  o["ok"] = JsonValue(true);
  return JsonValue(std::move(o)).dump();
}

std::string Router::do_drain(const JsonValue& req) {
  const JsonValue* replica = req.find("replica");
  if (replica == nullptr) {
    // Drain the router itself (mirrors the replica's drain verb).
    draining_.store(true, std::memory_order_release);
    if (!drain_started_.exchange(true, std::memory_order_acq_rel)) {
      obs::log_info("router", "drain requested over the wire", {});
      drain_thread_ = std::thread([this] { shutdown(); });
    }
    JsonValue::Object o;
    o["ok"] = JsonValue(true);
    o["status"] = JsonValue("draining");
    return JsonValue(std::move(o)).dump();
  }

  GSX_REQUIRE(replica->is_string(), "\"replica\" must be a string");
  const std::string& name = replica->as_string();
  bool goodbye = false;
  if (const JsonValue* g = req.find("goodbye"))
    if (g->is_bool()) goodbye = g->as_bool();

  std::optional<ReplicaInfo> info;
  for (const ReplicaInfo& r : membership_.snapshot())
    if (r.name == name) info = r;
  if (!info) return wire_error("unknown replica \"" + name + "\"");

  membership_.drain(name);
  // An operator-initiated drain is forwarded so the replica actually winds
  // down; a goodbye drain came FROM the replica's announcer on its way out —
  // forwarding it back would just race its exit.
  bool forwarded = false;
  if (!goodbye) {
    std::string response;
    forwarded = forward(*info, "{\"op\":\"drain\"}", &response);
  }
  JsonValue::Object o;
  o["ok"] = JsonValue(true);
  o["replica"] = JsonValue(name);
  o["state"] = JsonValue("draining");
  o["forwarded"] = JsonValue(forwarded);
  return JsonValue(std::move(o)).dump();
}

bool Router::forward(const ReplicaInfo& replica, const std::string& line,
                     std::string* response) {
  WireClient client;
  if (!client.dial_tcp(replica.host, replica.port)) return false;
  return client.request(line, response);
}

bool Router::load_on(const ReplicaInfo& replica, const std::string& model) {
  std::string path;
  {
    std::lock_guard lk(models_mu_);
    const auto it = models_.find(model);
    if (it == models_.end()) return false;
    path = it->second;
  }
  JsonValue::Object o;
  o["op"] = JsonValue("load");
  o["name"] = JsonValue(model);
  if (!path.empty()) o["path"] = JsonValue(path);
  std::string response;
  if (!forward(replica, JsonValue(std::move(o)).dump(), &response)) return false;
  try {
    const JsonValue r = JsonValue::parse(response);
    const JsonValue* ok = r.find("ok");
    if (ok != nullptr && ok->is_bool() && ok->as_bool()) {
      obs::Registry::instance().counter("router.failover.loads").add();
      obs::log_info("router", "failover load replayed",
                    {obs::lf("model", model), obs::lf("replica", replica.name)});
      return true;
    }
  } catch (...) {
  }
  return false;
}

std::string Router::do_forward_by_name(const JsonValue& req,
                                       const std::string& op) {
  const std::string& name = require_string(req, "name");
  const std::optional<ReplicaInfo> owner = membership_.owner(name);
  if (!owner) return wire_error("no routable replica for model \"" + name + "\"");

  std::string line = [&] {
    JsonValue::Object o = req.as_object();  // copy, preserve client fields
    return JsonValue(std::move(o)).dump();
  }();
  std::string response;
  if (!forward(*owner, line, &response)) {
    membership_.mark_dead(owner->name);
    return wire_error("replica \"" + owner->name + "\" unreachable for " + op);
  }
  obs::Registry::instance().counter("router.requests." + owner->name).add();

  // Remember (or forget) the load spec so a failover can replay it.
  if (op == "load") {
    std::string path;
    if (const JsonValue* p = req.find("path"))
      if (p->is_string()) path = p->as_string();
    std::lock_guard lk(models_mu_);
    models_[name] = path;
  } else {
    std::lock_guard lk(models_mu_);
    models_.erase(name);
  }

  try {
    JsonValue::Object o = JsonValue::parse(response).as_object();
    o["replica"] = JsonValue(owner->name);
    return JsonValue(std::move(o)).dump();
  } catch (...) {
    return response;
  }
}

std::string Router::do_predict(const JsonValue& req) {
  const std::string& model = require_string(req, "model");

  // Mint (or adopt) the request id at the front door; the forwarded line
  // carries it so the replica's flight events share this hop's id.
  std::uint64_t request_id = 0;
  if (const JsonValue* rid = req.find("request_id"))
    if (rid->is_string()) request_id = parse_request_id(rid->as_string());
  if (request_id == 0) request_id = mint_request_id();

  const std::string line = [&] {
    JsonValue::Object o = req.as_object();
    o["request_id"] = JsonValue(request_id_string(request_id));
    return JsonValue(std::move(o)).dump();
  }();

  auto& reg = obs::Registry::instance();
  std::string last_error = "no routable replica for model \"" + model + "\"";
  for (std::size_t attempt = 0; attempt < cfg_.max_forward_attempts; ++attempt) {
    const std::optional<ReplicaInfo> owner = membership_.owner(model);
    if (!owner) break;

    const double t0 = obs::now_seconds();
    std::string response;
    const bool delivered = forward(*owner, line, &response);
    const double seconds = obs::now_seconds() - t0;
    GSX_FLIGHT(obs::EventKind::RouterForward, request_id, fleet_hash(model),
               attempt, seconds);
    reg.counter("router.forwards").add();
    reg.histogram("router.forward.seconds").observe(seconds);

    if (!delivered) {
      // The dial/roundtrip failure IS the failure detector: kill the owner
      // (one rehash event) and retry on whoever inherits its arc.
      reg.counter("router.forward.failures").add();
      membership_.mark_dead(owner->name);
      last_error = "replica \"" + owner->name + "\" unreachable";
      continue;
    }
    reg.counter("router.requests." + owner->name).add();

    JsonValue parsed;
    try {
      parsed = JsonValue::parse(response);
    } catch (...) {
      return response;  // pass garbage through; client sees what we saw
    }
    const JsonValue* ok = parsed.find("ok");
    const JsonValue* err = parsed.find("error");
    const bool no_model = ok != nullptr && ok->is_bool() && !ok->as_bool() &&
                          err != nullptr && err->is_string() &&
                          err->as_string().rfind("no such model", 0) == 0;
    if (no_model && load_on(*owner, model)) {
      std::string retry;
      if (forward(*owner, line, &retry)) response = retry;
      try {
        parsed = JsonValue::parse(response);
      } catch (...) {
        return response;
      }
    }
    JsonValue::Object o = parsed.as_object();
    o["replica"] = JsonValue(owner->name);
    return JsonValue(std::move(o)).dump();
  }
  return wire_error(last_error);
}

std::string Router::do_stats() {
  const std::vector<ReplicaInfo> replicas = membership_.snapshot();
  auto& reg = obs::Registry::instance();
  JsonValue::Array arr;
  for (const ReplicaInfo& r : replicas) {
    JsonValue::Object e;
    e["name"] = JsonValue(r.name);
    e["endpoint"] = JsonValue(r.host + ":" + std::to_string(r.port));
    e["state"] = JsonValue(replica_state_name(r.state));
    e["heartbeat_age_seconds"] = JsonValue(r.heartbeat_age_seconds);
    e["heartbeats"] = JsonValue(static_cast<std::size_t>(r.heartbeats));
    e["queue_depth"] = JsonValue(r.queue_depth);
    e["requests"] =
        JsonValue(static_cast<std::size_t>(reg.counter("router.requests." + r.name).value()));
    arr.push_back(JsonValue(std::move(e)));
  }
  JsonValue::Object o;
  o["ok"] = JsonValue(true);
  o["replicas"] = JsonValue(std::move(arr));
  o["alive"] = JsonValue(membership_.alive_count());
  o["rehash_events"] =
      JsonValue(static_cast<std::size_t>(membership_.rehash_events()));
  {
    std::lock_guard lk(models_mu_);
    o["models"] = JsonValue(models_.size());
  }
  return JsonValue(std::move(o)).dump();
}

std::string Router::do_health() {
  JsonValue::Object o;
  const std::size_t alive = membership_.alive_count();
  o["ok"] = JsonValue(true);
  o["status"] = JsonValue(draining_.load(std::memory_order_acquire)
                              ? "draining"
                              : (alive > 0 ? "routing" : "no-replicas"));
  o["alive"] = JsonValue(alive);
  return JsonValue(std::move(o)).dump();
}

std::string Router::do_metrics() {
  JsonValue::Object o;
  o["ok"] = JsonValue(true);
  o["content_type"] = JsonValue(obs::kPrometheusContentType);
  o["prometheus"] = JsonValue(obs::render_prometheus());
  return JsonValue(std::move(o)).dump();
}

void Router::sweep_loop() {
  auto& reg = obs::Registry::instance();
  while (sweeping_.load(std::memory_order_acquire)) {
    membership_.expire_stale();
    const std::vector<ReplicaInfo> replicas = membership_.snapshot();
    double max_age = 0.0;
    for (const ReplicaInfo& r : replicas)
      if (r.state == ReplicaState::Alive && r.heartbeat_age_seconds > max_age)
        max_age = r.heartbeat_age_seconds;
    reg.gauge("router.replicas.alive")
        .set(static_cast<double>(membership_.alive_count()));
    reg.gauge("router.heartbeat.age.max_seconds").set(max_age);
    std::unique_lock lk(sweep_mu_);
    sweep_cv_.wait_for(lk, std::chrono::duration<double>(cfg_.sweep_seconds),
                       [this] { return !sweeping_.load(std::memory_order_acquire); });
  }
}

std::uint16_t Router::listen() {
  const std::uint16_t port = listener_.listen();
  sweeping_.store(true, std::memory_order_release);
  sweep_thread_ = std::thread([this] { sweep_loop(); });
  return port;
}

void Router::serve_forever() { listener_.serve_forever(); }

void Router::shutdown() {
  // A wire-initiated drain (watcher thread) and the daemon's post-accept
  // shutdown path can call this concurrently; both joining sweep_thread_
  // would be UB, so serialize the whole teardown.
  std::lock_guard lk(shutdown_mu_);
  draining_.store(true, std::memory_order_release);
  sweeping_.store(false, std::memory_order_release);
  sweep_cv_.notify_all();
  if (sweep_thread_.joinable()) sweep_thread_.join();
  listener_.shutdown();
}

}  // namespace gsx::serve
