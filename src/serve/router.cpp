#include "serve/router.hpp"

#include <sys/stat.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string_view>
#include <utility>

#include "common/error.hpp"
#include "obs/export_prom.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gsx::serve {

namespace {

const std::string& require_string(const JsonValue& req, const std::string& key) {
  const JsonValue* v = req.find(key);
  GSX_REQUIRE(v != nullptr && v->is_string(),
              "request needs a string \"" + key + "\" field");
  return v->as_string();
}

/// Value of the first exposition sample whose series is exactly `series`
/// (no label set), NaN when absent. Used to read a replica's predict count
/// out of its scraped text for the fleet-rate rollup.
double first_sample_value(const std::string& text, const std::string& series) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    const std::string_view line = std::string_view(text).substr(pos, nl - pos);
    pos = nl + 1;
    if (line.size() > series.size() && line.rfind(series, 0) == 0 &&
        line[series.size()] == ' ') {
      return std::strtod(std::string(line.substr(series.size() + 1)).c_str(),
                         nullptr);
    }
  }
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace

Router::Router(RouterConfig cfg)
    : cfg_(cfg),
      membership_(cfg.stale_after_seconds, cfg.virtual_nodes),
      listener_(
          LineListener::Config{"", cfg.tcp_port, cfg.metrics_port, "router",
                               [this] { return federated_prometheus(); }},
          [this](const std::string& line) { return handle_line(line); }) {
  // Pre-register the router metric schema (see Server's constructor for the
  // rationale). Per-replica request counters and p999 gauges are keyed by
  // replica name and appear on first forward / first fleet scrape.
  auto& reg = obs::Registry::instance();
  reg.counter("router.rehash_events");
  reg.counter("router.forwards");
  reg.counter("router.forward.failures");
  reg.counter("router.failover.loads");
  reg.counter("router.slo.violations");
  reg.counter("router.fleet.scrape.failures");
  reg.gauge("router.replicas.alive");
  reg.gauge("router.heartbeat.age.max_seconds");
  reg.gauge("router.fleet.replicas.scraped");
  reg.gauge("router.fleet.predict.rate");
  reg.gauge("router.fleet.queue_depth.max");
  reg.gauge("router.fleet.inflight");
  reg.histogram("router.forward.seconds", obs::Histogram::duration_bounds());
}

Router::~Router() {
  shutdown();
  if (drain_thread_.joinable()) drain_thread_.join();
}

std::string Router::handle_line(const std::string& line) {
  try {
    const JsonValue req = JsonValue::parse(line);
    GSX_REQUIRE(req.is_object(), "request must be a JSON object");
    return handle_request(req);
  } catch (const std::exception& e) {
    return wire_error(e.what());
  }
}

std::string Router::handle_request(const JsonValue& req) {
  const std::string& op = require_string(req, "op");
  if (op == "register") return do_register(req);
  if (op == "heartbeat") return do_heartbeat(req);
  if (op == "drain") return do_drain(req);
  if (op == "load") return do_forward_by_name(req, "load");
  if (op == "unload") return do_forward_by_name(req, "unload");
  if (op == "predict") return do_predict(req);
  if (op == "stats") return do_stats();
  if (op == "health") return do_health();
  if (op == "metrics") return do_metrics();
  if (op == "fleet_metrics") return do_fleet_metrics();
  if (op == "flight_collect") return do_flight_collect(req);
  return wire_error("unknown op \"" + op + "\"");
}

std::string Router::do_register(const JsonValue& req) {
  const std::string& name = require_string(req, "replica");
  const JsonValue* port = req.find("port");
  GSX_REQUIRE(port != nullptr && port->is_number() && port->as_number() > 0 &&
                  port->as_number() < 65536,
              "register needs a \"port\" in (0, 65536)");
  std::string host = "127.0.0.1";
  if (const JsonValue* h = req.find("host"))
    if (h->is_string()) host = h->as_string();
  const bool rehashed = membership_.join(
      name, host, static_cast<std::uint16_t>(port->as_number()));
  JsonValue::Object o;
  o["ok"] = JsonValue(true);
  o["rehashed"] = JsonValue(rehashed);
  return JsonValue(std::move(o)).dump();
}

std::string Router::do_heartbeat(const JsonValue& req) {
  const std::string& name = require_string(req, "replica");
  double queue_depth = 0.0;
  double inflight = 0.0;
  std::uint64_t seq = 0;
  if (const JsonValue* q = req.find("queue_depth"))
    if (q->is_number()) queue_depth = q->as_number();
  if (const JsonValue* f = req.find("inflight"))
    if (f->is_number()) inflight = f->as_number();
  if (const JsonValue* s = req.find("seq"))
    if (s->is_number()) seq = static_cast<std::uint64_t>(s->as_number());
  // The recv timestamp (router clock) between the replica's send/ack pair
  // (replica clock) is the per-heartbeat clock-offset sample gsx_obs uses.
  if (seq != 0) GSX_FLIGHT(obs::EventKind::HeartbeatRecv, 0, seq, 0, 0.0);
  if (!membership_.heartbeat(name, queue_depth, inflight))
    return wire_error("unknown or non-alive replica \"" + name +
                      "\" — re-register");
  JsonValue::Object o;
  o["ok"] = JsonValue(true);
  return JsonValue(std::move(o)).dump();
}

std::string Router::do_drain(const JsonValue& req) {
  const JsonValue* replica = req.find("replica");
  if (replica == nullptr) {
    // Drain the router itself (mirrors the replica's drain verb).
    draining_.store(true, std::memory_order_release);
    if (!drain_started_.exchange(true, std::memory_order_acq_rel)) {
      obs::log_info("router", "drain requested over the wire", {});
      drain_thread_ = std::thread([this] { shutdown(); });
    }
    JsonValue::Object o;
    o["ok"] = JsonValue(true);
    o["status"] = JsonValue("draining");
    return JsonValue(std::move(o)).dump();
  }

  GSX_REQUIRE(replica->is_string(), "\"replica\" must be a string");
  const std::string& name = replica->as_string();
  bool goodbye = false;
  if (const JsonValue* g = req.find("goodbye"))
    if (g->is_bool()) goodbye = g->as_bool();

  std::optional<ReplicaInfo> info;
  for (const ReplicaInfo& r : membership_.snapshot())
    if (r.name == name) info = r;
  if (!info) return wire_error("unknown replica \"" + name + "\"");

  membership_.drain(name);
  // An operator-initiated drain is forwarded so the replica actually winds
  // down; a goodbye drain came FROM the replica's announcer on its way out —
  // forwarding it back would just race its exit.
  bool forwarded = false;
  if (!goodbye) {
    std::string response;
    forwarded = forward(*info, "{\"op\":\"drain\"}", &response);
  }
  JsonValue::Object o;
  o["ok"] = JsonValue(true);
  o["replica"] = JsonValue(name);
  o["state"] = JsonValue("draining");
  o["forwarded"] = JsonValue(forwarded);
  return JsonValue(std::move(o)).dump();
}

bool Router::forward(const ReplicaInfo& replica, const std::string& line,
                     std::string* response) {
  WireClient client;
  if (!client.dial_tcp(replica.host, replica.port)) return false;
  return client.request(line, response);
}

bool Router::load_on(const ReplicaInfo& replica, const std::string& model) {
  std::string path;
  {
    std::lock_guard lk(models_mu_);
    const auto it = models_.find(model);
    if (it == models_.end()) return false;
    path = it->second;
  }
  JsonValue::Object o;
  o["op"] = JsonValue("load");
  o["name"] = JsonValue(model);
  if (!path.empty()) o["path"] = JsonValue(path);
  std::string response;
  if (!forward(replica, JsonValue(std::move(o)).dump(), &response)) return false;
  try {
    const JsonValue r = JsonValue::parse(response);
    const JsonValue* ok = r.find("ok");
    if (ok != nullptr && ok->is_bool() && ok->as_bool()) {
      obs::Registry::instance().counter("router.failover.loads").add();
      obs::log_info("router", "failover load replayed",
                    {obs::lf("model", model), obs::lf("replica", replica.name)});
      return true;
    }
  } catch (...) {
  }
  return false;
}

std::string Router::do_forward_by_name(const JsonValue& req,
                                       const std::string& op) {
  const std::string& name = require_string(req, "name");
  const std::optional<ReplicaInfo> owner = membership_.owner(name);
  if (!owner) return wire_error("no routable replica for model \"" + name + "\"");

  std::string line = [&] {
    JsonValue::Object o = req.as_object();  // copy, preserve client fields
    return JsonValue(std::move(o)).dump();
  }();
  std::string response;
  if (!forward(*owner, line, &response)) {
    membership_.mark_dead(owner->name);
    return wire_error("replica \"" + owner->name + "\" unreachable for " + op);
  }
  obs::Registry::instance().counter("router.requests." + owner->name).add();

  // Remember (or forget) the load spec so a failover can replay it.
  if (op == "load") {
    std::string path;
    if (const JsonValue* p = req.find("path"))
      if (p->is_string()) path = p->as_string();
    std::lock_guard lk(models_mu_);
    models_[name] = path;
  } else {
    std::lock_guard lk(models_mu_);
    models_.erase(name);
  }

  try {
    JsonValue::Object o = JsonValue::parse(response).as_object();
    o["replica"] = JsonValue(owner->name);
    return JsonValue(std::move(o)).dump();
  } catch (...) {
    return response;
  }
}

std::string Router::do_predict(const JsonValue& req) {
  const std::string& model = require_string(req, "model");

  // Mint (or adopt) the request id at the front door; the forwarded line
  // carries it so the replica's flight events share this hop's id.
  std::uint64_t request_id = 0;
  if (const JsonValue* rid = req.find("request_id"))
    if (rid->is_string()) request_id = parse_request_id(rid->as_string());
  if (request_id == 0) request_id = mint_request_id();

  // Same for the distributed trace id: a client may carry its own context;
  // otherwise the router is the trace root. The scope stamps the id on every
  // flight event this thread records below, and the forwarded trace_id /
  // parent_span_id fields extend the trace into the replica's queue/assemble/
  // solve spans — gsx_obs groups a merged timeline by exactly this id.
  std::uint64_t trace_id = 0;
  if (const JsonValue* tid = req.find("trace_id"))
    if (tid->is_string()) trace_id = parse_trace_id(tid->as_string());
  if (trace_id == 0) trace_id = mint_trace_id();
  const obs::FlightTraceScope trace_scope(trace_id);
  const double t_admit = obs::now_seconds();

  JsonValue::Object base = req.as_object();  // copy, preserve client fields
  base["request_id"] = JsonValue(request_id_string(request_id));
  base["trace_id"] = JsonValue(trace_id_string(trace_id));

  auto& reg = obs::Registry::instance();
  std::string last_error = "no routable replica for model \"" + model + "\"";
  for (std::size_t attempt = 0; attempt < cfg_.max_forward_attempts; ++attempt) {
    const std::optional<ReplicaInfo> owner = membership_.owner(model);
    if (!owner) break;
    if (attempt == 0) {
      GSX_FLIGHT(obs::EventKind::SpanRouterQueue, request_id,
                 obs::mint_span_id(), 0, obs::now_seconds() - t_admit);
    }

    // Each attempt is one span, and that span is the parent of everything
    // the replica records for this hop (SpanReplica* carry it as b).
    const std::uint64_t forward_span = obs::mint_span_id();
    const std::string line = [&] {
      JsonValue::Object o = base;
      o["parent_span_id"] = JsonValue(span_id_string(forward_span));
      return JsonValue(std::move(o)).dump();
    }();

    const double t0 = obs::now_seconds();
    std::string response;
    const bool delivered = forward(*owner, line, &response);
    const double seconds = obs::now_seconds() - t0;
    GSX_FLIGHT(obs::EventKind::RouterForward, request_id, fleet_hash(model),
               attempt, seconds);
    GSX_FLIGHT(attempt == 0 ? obs::EventKind::SpanRouterForward
                            : obs::EventKind::SpanRouterRetry,
               request_id, forward_span, 0, seconds);
    reg.counter("router.forwards").add();
    reg.histogram("router.forward.seconds").observe(seconds);
    if (seconds > cfg_.slo_forward_seconds)
      reg.counter("router.slo.violations").add();

    if (!delivered) {
      // The dial/roundtrip failure IS the failure detector: kill the owner
      // (one rehash event) and retry on whoever inherits its arc.
      reg.counter("router.forward.failures").add();
      membership_.mark_dead(owner->name);
      last_error = "replica \"" + owner->name + "\" unreachable";
      continue;
    }
    reg.counter("router.requests." + owner->name).add();

    JsonValue parsed;
    try {
      parsed = JsonValue::parse(response);
    } catch (...) {
      return response;  // pass garbage through; client sees what we saw
    }
    const JsonValue* ok = parsed.find("ok");
    const JsonValue* err = parsed.find("error");
    const bool no_model = ok != nullptr && ok->is_bool() && !ok->as_bool() &&
                          err != nullptr && err->is_string() &&
                          err->as_string().rfind("no such model", 0) == 0;
    if (no_model && load_on(*owner, model)) {
      std::string retry;
      if (forward(*owner, line, &retry)) response = retry;
      try {
        parsed = JsonValue::parse(response);
      } catch (...) {
        return response;
      }
    }
    JsonValue::Object o = parsed.as_object();
    o["replica"] = JsonValue(owner->name);
    o["trace_id"] = JsonValue(trace_id_string(trace_id));
    return JsonValue(std::move(o)).dump();
  }
  JsonValue::Object err;
  err["ok"] = JsonValue(false);
  err["error"] = JsonValue(last_error);
  err["trace_id"] = JsonValue(trace_id_string(trace_id));
  return JsonValue(std::move(err)).dump();
}

std::string Router::do_stats() {
  const std::vector<ReplicaInfo> replicas = membership_.snapshot();
  auto& reg = obs::Registry::instance();
  JsonValue::Array arr;
  for (const ReplicaInfo& r : replicas) {
    JsonValue::Object e;
    e["name"] = JsonValue(r.name);
    e["endpoint"] = JsonValue(r.host + ":" + std::to_string(r.port));
    e["state"] = JsonValue(replica_state_name(r.state));
    e["heartbeat_age_seconds"] = JsonValue(r.heartbeat_age_seconds);
    e["heartbeats"] = JsonValue(static_cast<std::size_t>(r.heartbeats));
    e["queue_depth"] = JsonValue(r.queue_depth);
    e["inflight"] = JsonValue(r.inflight);
    e["requests"] =
        JsonValue(static_cast<std::size_t>(reg.counter("router.requests." + r.name).value()));
    arr.push_back(JsonValue(std::move(e)));
  }
  JsonValue::Object o;
  o["ok"] = JsonValue(true);
  o["replicas"] = JsonValue(std::move(arr));
  o["alive"] = JsonValue(membership_.alive_count());
  o["rehash_events"] =
      JsonValue(static_cast<std::size_t>(membership_.rehash_events()));
  {
    std::lock_guard lk(models_mu_);
    o["models"] = JsonValue(models_.size());
  }
  return JsonValue(std::move(o)).dump();
}

std::string Router::do_health() {
  JsonValue::Object o;
  const std::size_t alive = membership_.alive_count();
  o["ok"] = JsonValue(true);
  o["status"] = JsonValue(draining_.load(std::memory_order_acquire)
                              ? "draining"
                              : (alive > 0 ? "routing" : "no-replicas"));
  o["alive"] = JsonValue(alive);
  return JsonValue(std::move(o)).dump();
}

std::string Router::do_metrics() {
  JsonValue::Object o;
  o["ok"] = JsonValue(true);
  o["content_type"] = JsonValue(obs::kPrometheusContentType);
  o["prometheus"] = JsonValue(obs::render_prometheus());
  return JsonValue(std::move(o)).dump();
}

std::string Router::federated_prometheus() {
  // Serialized: the predict-rate rollup keeps scrape-to-scrape state shared
  // between the fleet_metrics verb and the HTTP scrape port.
  std::lock_guard lk(scrape_mu_);
  auto& reg = obs::Registry::instance();
  const std::string predict_family = obs::prometheus_name("serve.predict.seconds");

  std::vector<std::string> parts;
  double fleet_predicts = 0.0;
  bool have_counts = false;
  double max_queue = 0.0;
  double inflight_total = 0.0;
  std::size_t scraped = 0;
  for (const ReplicaInfo& r : membership_.snapshot()) {
    if (r.state == ReplicaState::Dead) continue;
    if (r.state == ReplicaState::Alive) {
      if (r.queue_depth > max_queue) max_queue = r.queue_depth;
      inflight_total += r.inflight;
    }
    std::string response;
    std::string text;
    bool got = false;
    if (forward(r, "{\"op\":\"metrics\"}", &response)) {
      try {
        const JsonValue parsed = JsonValue::parse(response);
        const JsonValue* prom = parsed.find("prometheus");
        if (prom != nullptr && prom->is_string()) {
          text = prom->as_string();
          got = true;
        }
      } catch (...) {
      }
    }
    if (!got) {
      reg.counter("router.fleet.scrape.failures").add();
      continue;
    }
    ++scraped;
    const double count = first_sample_value(text, predict_family + "_count");
    if (!std::isnan(count)) {
      fleet_predicts += count;
      have_counts = true;
    }
    const double p999 =
        obs::prometheus_histogram_quantile(text, predict_family, 0.999);
    if (!std::isnan(p999))
      reg.gauge("router.fleet.predict.p999." + r.name).set(p999);
    parts.push_back(obs::prometheus_with_label(text, "replica", r.name));
  }

  // Rollups land in the router's own registry (before the local render below)
  // so they ride the normal exposition path and keep stable names.
  const double now = obs::now_seconds();
  if (have_counts && scrape_prev_time_ > 0.0 && now > scrape_prev_time_ &&
      fleet_predicts >= scrape_prev_predicts_) {
    reg.gauge("router.fleet.predict.rate")
        .set((fleet_predicts - scrape_prev_predicts_) / (now - scrape_prev_time_));
  }
  if (have_counts) {
    scrape_prev_predicts_ = fleet_predicts;
    scrape_prev_time_ = now;
  }
  reg.gauge("router.fleet.replicas.scraped").set(static_cast<double>(scraped));
  reg.gauge("router.fleet.queue_depth.max").set(max_queue);
  reg.gauge("router.fleet.inflight").set(inflight_total);

  parts.insert(parts.begin(), obs::render_prometheus());
  return obs::prometheus_merge(parts);
}

std::string Router::do_fleet_metrics() {
  JsonValue::Object o;
  o["ok"] = JsonValue(true);
  o["content_type"] = JsonValue(obs::kPrometheusContentType);
  o["prometheus"] = JsonValue(federated_prometheus());
  return JsonValue(std::move(o)).dump();
}

std::string Router::do_flight_collect(const JsonValue& req) {
  const std::string& dir = require_string(req, "dir");
  ::mkdir(dir.c_str(), 0755);  // best effort; the writes below report failure
  JsonValue::Array files;
  std::size_t failures = 0;
  for (const ReplicaInfo& r : membership_.snapshot()) {
    if (r.state == ReplicaState::Dead) continue;
    std::string response;
    std::string jsonl;
    bool got = false;
    if (forward(r, "{\"op\":\"flight\"}", &response)) {
      try {
        const JsonValue parsed = JsonValue::parse(response);
        const JsonValue* j = parsed.find("jsonl");
        if (j != nullptr && j->is_string()) {
          jsonl = j->as_string();
          got = true;
        }
      } catch (...) {
      }
    }
    const std::string path = dir + "/flight-" + r.name + ".jsonl";
    std::ofstream out;
    if (got) out.open(path, std::ios::trunc);
    if (!got || !out) {
      ++failures;
      obs::log_warn("router", "flight_collect: replica dump failed",
                    {obs::lf("replica", r.name)});
      continue;
    }
    out << jsonl;
    files.push_back(JsonValue(path));
  }
  // The router's own recorder completes the picture: its forward spans and
  // heartbeat recv events are the reference clock for the merge.
  const std::string router_path = dir + "/flight-router.jsonl";
  {
    std::ofstream out(router_path, std::ios::trunc);
    if (out) {
      out << obs::FlightRecorder::instance().snapshot_jsonl();
      files.push_back(JsonValue(router_path));
    } else {
      ++failures;
    }
  }
  JsonValue::Object o;
  o["ok"] = JsonValue(!files.empty());
  o["dir"] = JsonValue(dir);
  o["files"] = JsonValue(std::move(files));
  o["failures"] = JsonValue(failures);
  return JsonValue(std::move(o)).dump();
}

void Router::sweep_loop() {
  auto& reg = obs::Registry::instance();
  while (sweeping_.load(std::memory_order_acquire)) {
    membership_.expire_stale();
    const std::vector<ReplicaInfo> replicas = membership_.snapshot();
    double max_age = 0.0;
    for (const ReplicaInfo& r : replicas)
      if (r.state == ReplicaState::Alive && r.heartbeat_age_seconds > max_age)
        max_age = r.heartbeat_age_seconds;
    reg.gauge("router.replicas.alive")
        .set(static_cast<double>(membership_.alive_count()));
    reg.gauge("router.heartbeat.age.max_seconds").set(max_age);
    std::unique_lock lk(sweep_mu_);
    sweep_cv_.wait_for(lk, std::chrono::duration<double>(cfg_.sweep_seconds),
                       [this] { return !sweeping_.load(std::memory_order_acquire); });
  }
}

std::uint16_t Router::listen() {
  const std::uint16_t port = listener_.listen();
  sweeping_.store(true, std::memory_order_release);
  sweep_thread_ = std::thread([this] { sweep_loop(); });
  return port;
}

void Router::serve_forever() { listener_.serve_forever(); }

void Router::shutdown() {
  // A wire-initiated drain (watcher thread) and the daemon's post-accept
  // shutdown path can call this concurrently; both joining sweep_thread_
  // would be UB, so serialize the whole teardown.
  std::lock_guard lk(shutdown_mu_);
  draining_.store(true, std::memory_order_release);
  sweeping_.store(false, std::memory_order_release);
  sweep_cv_.notify_all();
  if (sweep_thread_.joinable()) sweep_thread_.join();
  listener_.shutdown();
}

}  // namespace gsx::serve
