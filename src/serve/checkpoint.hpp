// gsx-ckpt-v1: versioned binary checkpoints for fitted models and MLE
// restarts — the persistence layer that splits *modeling* (fit once) from
// *prediction* (serve many), as ExaGeoStat's modeling/prediction stages do.
//
// File layout (all integers little-endian, fixed width):
//   magic   "GSXCKPT1"                                    8 bytes
//   u32     format version (= 1)
//   u32     section count
//   then per section:
//     u32   tag (FourCC, e.g. 'META')
//     u32   reserved (0)
//     u64   payload bytes
//     u32   CRC32 (IEEE reflected, poly 0xEDB88320) of the payload
//     payload bytes
//
// A fitted-model checkpoint carries META (kernel name, theta, ModelConfig)
// + LOCS (train locations) + OBSV (observations) + FACT (the tile Cholesky
// factor of Sigma_nn, per-tile precision and TLR rank metadata included).
// A fit-progress checkpoint (mid-MLE restart, in the spirit of long-run
// solvers like SDPB) carries META + FITP (best theta, best loglik,
// evaluation count) and no factor.
//
// Every section CRC is verified on load; a mismatch, truncation, bad magic
// or unknown version throws InvalidArgument. Loads are bit-identical:
// reloaded factors reproduce predictions to 0 ULP.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "geostat/locations.hpp"
#include "tile/sym_tile_matrix.hpp"

namespace gsx::serve {

/// A fitted model ready to serve: everything prediction needs, no refit.
struct ModelCheckpoint {
  std::string kernel;                  ///< registry name (geostat::make_kernel)
  std::vector<double> theta;           ///< fitted parameters
  core::ModelConfig config;            ///< variant/tile/policy the factor was built with
  std::vector<geostat::Location> train_locs;
  std::vector<double> z_train;
  tile::SymTileMatrix factor{1, 1};    ///< tile Cholesky factor of Sigma_nn(theta)
};

/// Mid-fit restart state: the incumbent best plus optimizer bookkeeping.
struct FitCheckpoint {
  std::string kernel;
  std::vector<double> theta_best;
  double loglik_best = 0.0;
  std::uint64_t evaluations = 0;
};

enum class CheckpointKind : unsigned char { Model, FitProgress };

/// Atomic save (write to path + ".tmp", then rename). Throws on I/O errors.
void save_model_checkpoint(const std::string& path, const ModelCheckpoint& ckpt);
void save_fit_checkpoint(const std::string& path, const FitCheckpoint& ckpt);

/// Full parse with CRC verification of every section.
ModelCheckpoint load_model_checkpoint(const std::string& path);
FitCheckpoint load_fit_checkpoint(const std::string& path);

/// Cheap kind probe (magic + section tags only, no payload validation).
CheckpointKind probe_checkpoint(const std::string& path);

/// Full structural + CRC validation without materializing the model: every
/// section parsed and CRC-checked. False for missing files, bad magic,
/// truncation (a partially copied file in a shared store) or CRC mismatch.
[[nodiscard]] bool checkpoint_valid(const std::string& path) noexcept;

/// Resolve `model` to its newest valid checkpoint in a shared store
/// directory. Layout, in precedence order:
///   <store>/<model>.ckpt            — single current version
///   <store>/<model>/<version>.ckpt  — versioned; lexicographically last
///                                     *valid* file wins (invalid/partial
///                                     files are skipped, never fatal)
/// Throws InvalidArgument when no valid checkpoint exists for the model.
std::string resolve_store_checkpoint(const std::string& store_dir,
                                     const std::string& model);

/// CRC32 (IEEE 802.3 reflected polynomial) — exposed for tests and tools.
std::uint32_t crc32(const std::uint8_t* data, std::size_t n);

}  // namespace gsx::serve
