#include "serve/wire.hpp"

#include <unistd.h>

#include <atomic>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace gsx::serve {

namespace {

[[noreturn]] void bad(std::size_t pos, const std::string& what) {
  throw InvalidArgument("JSON parse error at byte " + std::to_string(pos) + ": " +
                        what);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) bad(pos_, "trailing characters after value");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) bad(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) bad(pos_, std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        bad(pos_, "invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        bad(pos_, "invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        bad(pos_, "invalid literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return JsonValue(std::move(obj));
      if (c != ',') bad(pos_ - 1, "expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return JsonValue(std::move(arr));
      if (c != ',') bad(pos_ - 1, "expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) bad(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) bad(pos_ - 1, "control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) bad(pos_, "unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: bad(pos_ - 1, "invalid escape");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) bad(pos_, "truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else bad(pos_ - 1, "invalid hex digit in \\u escape");
    }
    return value;
  }

  void append_unicode_escape(std::string& out) {
    unsigned cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      // High surrogate must be followed by \uDC00..\uDFFF.
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u')
        bad(pos_, "unpaired surrogate");
      pos_ += 2;
      const unsigned lo = parse_hex4();
      if (lo < 0xDC00 || lo > 0xDFFF) bad(pos_, "invalid low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      bad(pos_, "unpaired surrogate");
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-'))
      ++pos_;
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc{} || ptr != text_.data() + pos_) bad(start, "invalid number");
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c) & 0xFF);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_number(double d, std::string& out) {
  if (!std::isfinite(d)) {
    // JSON has no Inf/NaN; null is the conventional lossy encoding.
    out += "null";
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, d);
  (void)ec;
  out.append(buf, ptr);
}

void dump_value(const JsonValue& v, std::string& out);

void dump_array(const JsonValue::Array& a, std::string& out) {
  out.push_back('[');
  bool first = true;
  for (const JsonValue& v : a) {
    if (!first) out.push_back(',');
    first = false;
    dump_value(v, out);
  }
  out.push_back(']');
}

void dump_object(const JsonValue::Object& o, std::string& out) {
  out.push_back('{');
  bool first = true;
  for (const auto& [key, value] : o) {
    if (!first) out.push_back(',');
    first = false;
    dump_string(key, out);
    out.push_back(':');
    dump_value(value, out);
  }
  out.push_back('}');
}

void dump_value(const JsonValue& v, std::string& out) {
  if (v.is_null()) out += "null";
  else if (v.is_bool()) out += v.as_bool() ? "true" : "false";
  else if (v.is_number()) dump_number(v.as_number(), out);
  else if (v.is_string()) dump_string(v.as_string(), out);
  else if (v.is_array()) dump_array(v.as_array(), out);
  else dump_object(v.as_object(), out);
}

}  // namespace

bool JsonValue::as_bool() const {
  GSX_REQUIRE(is_bool(), "JsonValue: not a bool");
  return std::get<bool>(v_);
}

double JsonValue::as_number() const {
  GSX_REQUIRE(is_number(), "JsonValue: not a number");
  return std::get<double>(v_);
}

const std::string& JsonValue::as_string() const {
  GSX_REQUIRE(is_string(), "JsonValue: not a string");
  return std::get<std::string>(v_);
}

const JsonValue::Array& JsonValue::as_array() const {
  GSX_REQUIRE(is_array(), "JsonValue: not an array");
  return std::get<Array>(v_);
}

const JsonValue::Object& JsonValue::as_object() const {
  GSX_REQUIRE(is_object(), "JsonValue: not an object");
  return std::get<Object>(v_);
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const Object& obj = std::get<Object>(v_);
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

std::string JsonValue::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

std::string wire_error(const std::string& why) {
  JsonValue::Object o;
  o["ok"] = JsonValue(false);
  o["error"] = JsonValue(why);
  return JsonValue(std::move(o)).dump();
}

std::uint64_t mint_request_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::string request_id_string(std::uint64_t id) {
  return "r-" + std::to_string(id);
}

std::uint64_t parse_request_id(const std::string& s) noexcept {
  std::string_view sv(s);
  if (sv.rfind("r-", 0) == 0) sv.remove_prefix(2);
  if (sv.empty()) return 0;
  std::uint64_t id = 0;
  const auto [ptr, ec] = std::from_chars(sv.data(), sv.data() + sv.size(), id);
  if (ec != std::errc{} || ptr != sv.data() + sv.size()) return 0;
  return id;
}

std::uint64_t mint_trace_id() noexcept {
  // splitmix64 over (counter, pid, a per-process nonce from the address of a
  // static — ASLR makes it differ across restarts). Collisions across a
  // fleet would silently merge two requests' traces, so uniqueness beats
  // prettiness here.
  static std::atomic<std::uint64_t> counter{1};
  static const std::uint64_t nonce =
      reinterpret_cast<std::uintptr_t>(&counter) ^
      (static_cast<std::uint64_t>(::getpid()) << 32);
  std::uint64_t h = nonce + counter.fetch_add(1, std::memory_order_relaxed) *
                                0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h != 0 ? h : 1;  // 0 means "untraced" everywhere
}

std::string trace_id_string(std::uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "t-%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

std::string span_id_string(std::uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "s-%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

std::uint64_t parse_trace_id(const std::string& s) noexcept {
  std::string_view sv(s);
  if (sv.rfind("t-", 0) == 0 || sv.rfind("s-", 0) == 0) sv.remove_prefix(2);
  if (sv.empty() || sv.size() > 16) return 0;
  std::uint64_t id = 0;
  const auto [ptr, ec] =
      std::from_chars(sv.data(), sv.data() + sv.size(), id, 16);
  if (ec != std::errc{} || ptr != sv.data() + sv.size()) return 0;
  return id;
}

// Verb tables. tools/check_docs.sh greps the initializer lists below, so
// keep one string literal per verb (no computed entries).
const std::vector<std::string>& server_verbs() {
  static const std::vector<std::string> kServerVerbs = {
      "load", "unload", "predict", "stats", "health", "metrics", "drain",
      "flight",
  };
  return kServerVerbs;
}

const std::vector<std::string>& router_verbs() {
  static const std::vector<std::string> kRouterVerbs = {
      "register", "heartbeat", "drain",   "load",          "unload",
      "predict",  "stats",     "health",  "metrics",       "fleet_metrics",
      "flight_collect",
  };
  return kRouterVerbs;
}

}  // namespace gsx::serve
