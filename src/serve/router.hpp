// Fleet router: one NDJSON front door that consistent-hashes model names
// across a fleet of gsx_serve replicas.
//
// The router speaks the same newline-delimited JSON wire as the replicas
// (the authoritative verb table is router_verbs() in serve/wire.cpp):
//
//   replica-facing (the Announcer sends these):
//     {"op":"register","replica":"r0","host":"127.0.0.1","port":9101}
//     {"op":"heartbeat","replica":"r0","queue_depth":2}
//     {"op":"drain","replica":"r0"}            // operator: drain one replica
//     {"op":"drain","replica":"r0","goodbye":true}  // replica: I'm leaving
//
//   client-facing (forwarded to the owning replica):
//     {"op":"load","name":"era5","path":"era5.ckpt"}   // path optional
//     {"op":"unload","name":"era5"}
//     {"op":"predict","model":"era5","points":[...]}
//
//   local:
//     {"op":"stats"}   — replica table, placements, forward counters
//     {"op":"health"}  — alive replica count
//     {"op":"metrics"} — router-local Prometheus text
//     {"op":"fleet_metrics"}  — federated Prometheus text: every routable
//                               replica scraped over the wire, samples
//                               re-labeled replica="<name>", merged with the
//                               router's own series plus fleet rollups (this
//                               union is also what --metrics-port serves)
//     {"op":"flight_collect","dir":"/tmp/pm"}  — dump every replica's flight
//                               recorder (plus the router's own) into
//                               <dir>/flight-<name>.jsonl for gsx_obs merge
//     {"op":"drain"}   — no "replica": drain the router itself
//
// Placement is Membership's consistent-hash ring, so it depends only on the
// set of routable replica names. Forwards dial the owner per request (the
// fleet is loopback-local; a dial failure IS the failure detector). A failed
// forward marks the owner Dead — one rehash event — and retries on the new
// owner; if the new owner answers "no such model", the router replays the
// remembered load spec there first, so failover is invisible to clients
// beyond latency. The router mints the request id when the client didn't,
// and forwards it on the second hop, so one id traces both hops in the
// flight recorder.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "serve/listener.hpp"
#include "serve/membership.hpp"
#include "serve/wire.hpp"

namespace gsx::serve {

struct RouterConfig {
  std::uint16_t tcp_port = 0;   ///< client + replica port on 127.0.0.1
  int metrics_port = -1;        ///< Prometheus HTTP scrape port (-1 = off)
  double stale_after_seconds = 10.0;  ///< heartbeat age that kills a replica
  std::size_t virtual_nodes = 64;     ///< ring points per replica
  double sweep_seconds = 1.0;   ///< stale-heartbeat sweep cadence
  std::size_t max_forward_attempts = 3;  ///< owner + failover retries
  double slo_forward_seconds = 1.0;  ///< forward latency SLO; slower forwards
                                     ///< burn router.slo.violations
};

class Router {
 public:
  explicit Router(RouterConfig cfg);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Handle one request line, return one response line (no trailing '\n').
  /// Never throws. Tests drive this directly, like Server::handle_line.
  std::string handle_line(const std::string& line);

  /// Bind + listen; starts the stale-heartbeat sweeper. Returns the bound
  /// TCP port (useful with tcp_port = 0).
  std::uint16_t listen();

  void serve_forever();
  void shutdown();

  [[nodiscard]] bool running() const { return listener_.running(); }
  [[nodiscard]] std::uint16_t metrics_port() const {
    return listener_.metrics_port();
  }

  Membership& membership() { return membership_; }

 private:
  std::string handle_request(const JsonValue& req);
  std::string do_register(const JsonValue& req);
  std::string do_heartbeat(const JsonValue& req);
  std::string do_drain(const JsonValue& req);
  std::string do_forward_by_name(const JsonValue& req, const std::string& op);
  std::string do_predict(const JsonValue& req);
  std::string do_stats();
  std::string do_health();
  std::string do_metrics();
  std::string do_fleet_metrics();
  std::string do_flight_collect(const JsonValue& req);

  /// The federated exposition: scrape every routable replica's metrics over
  /// the wire, re-label with replica="<name>", merge with the router's own
  /// registry, and refresh the fleet rollup gauges (aggregate predict rate,
  /// max queue depth, total in-flight, per-replica p999). Serves both the
  /// fleet_metrics verb and the HTTP scrape port.
  std::string federated_prometheus();

  /// One hop: dial `replica`, send `line`, read one line. False on any I/O
  /// failure (the caller marks the replica dead and rehashes).
  bool forward(const ReplicaInfo& replica, const std::string& line,
               std::string* response);

  /// Replay the remembered load spec for `model` on `replica`; true when the
  /// replica answered ok. Used before retrying a predict after failover.
  bool load_on(const ReplicaInfo& replica, const std::string& model);

  void sweep_loop();

  const RouterConfig cfg_;
  Membership membership_;
  LineListener listener_;

  std::mutex models_mu_;
  std::map<std::string, std::string> models_;  ///< model -> load "path" ("" = store)

  // Scrape-to-scrape state for the fleet predict-rate rollup; serializes
  // concurrent scrapers (wire verb vs. HTTP scrape port).
  std::mutex scrape_mu_;
  double scrape_prev_predicts_ = 0.0;
  double scrape_prev_time_ = 0.0;

  std::atomic<bool> draining_{false};
  std::atomic<bool> drain_started_{false};
  std::thread drain_thread_;

  std::atomic<bool> sweeping_{false};
  std::mutex sweep_mu_;
  std::mutex shutdown_mu_;  // serializes concurrent shutdown() callers
  std::condition_variable sweep_cv_;
  std::thread sweep_thread_;
};

}  // namespace gsx::serve
