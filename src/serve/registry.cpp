#include "serve/registry.hpp"

#include <utility>

#include "cholesky/tile_solve.hpp"
#include "common/error.hpp"
#include "geostat/kernel_registry.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace gsx::serve {

namespace {

std::shared_ptr<LoadedModel> build_loaded(std::string name, ModelCheckpoint ckpt);

}  // namespace

std::shared_ptr<const LoadedModel> LoadedModel::from_checkpoint(std::string name,
                                                                const std::string& path) {
  std::shared_ptr<LoadedModel> model =
      build_loaded(std::move(name), load_model_checkpoint(path));
  model->path = path;
  return model;
}

std::shared_ptr<const LoadedModel> LoadedModel::from_checkpoint(std::string name,
                                                                ModelCheckpoint ckpt) {
  return build_loaded(std::move(name), std::move(ckpt));
}

namespace {

std::shared_ptr<LoadedModel> build_loaded(std::string name, ModelCheckpoint ckpt) {
  auto m = std::make_shared<LoadedModel>();
  m->name = std::move(name);
  m->kernel = geostat::make_kernel(ckpt.kernel, ckpt.theta);
  m->theta = std::move(ckpt.theta);
  m->config = ckpt.config;
  m->train_locs = std::move(ckpt.train_locs);
  m->z_train = std::move(ckpt.z_train);
  m->factor = std::move(ckpt.factor);

  // Amortize the observation solve once: every batch then reuses y.
  m->y_solved.assign(m->z_train.begin(), m->z_train.end());
  cholesky::tile_forward_solve(m->factor, m->y_solved);

  m->resident_bytes = m->factor.footprint_bytes() +
                      m->train_locs.size() * sizeof(geostat::Location) +
                      (m->z_train.size() + m->y_solved.size()) * sizeof(double);
  return m;
}

}  // namespace

ModelRegistry::ModelRegistry(std::size_t max_resident_bytes)
    : capacity_bytes_(max_resident_bytes) {}

void ModelRegistry::evict_to_fit_locked(std::size_t incoming_bytes) {
  while (!entries_.empty() && resident_bytes_ + incoming_bytes > capacity_bytes_) {
    auto victim = entries_.begin();
    for (auto it = std::next(entries_.begin()); it != entries_.end(); ++it) {
      if (it->second.last_used.load(std::memory_order_relaxed) <
          victim->second.last_used.load(std::memory_order_relaxed))
        victim = it;
    }
    const std::size_t victim_bytes = victim->second.model->resident_bytes;
    resident_bytes_ -= victim_bytes;
    obs::log_info("serve", "evicting model from factor cache",
                  {obs::lf("name", victim->first),
                   obs::lf("bytes", static_cast<std::uint64_t>(victim_bytes))});
    entries_.erase(victim);
    ++evictions_;
    obs::Registry::instance().counter("serve.cache.evictions").add();
    GSX_FLIGHT(obs::EventKind::CacheEvict, 0, 0, 0, static_cast<double>(victim_bytes));
  }
}

std::shared_ptr<const LoadedModel> ModelRegistry::load(const std::string& name,
                                                       const std::string& path) {
  // Parse outside the lock: loading is slow, lookups must not stall.
  std::shared_ptr<const LoadedModel> model = LoadedModel::from_checkpoint(name, path);
  return insert(std::move(model));
}

std::shared_ptr<const LoadedModel> ModelRegistry::insert(
    std::shared_ptr<const LoadedModel> model) {
  GSX_REQUIRE(model != nullptr && !model->name.empty(),
              "ModelRegistry::insert: model with a non-empty name required");
  GSX_REQUIRE(model->resident_bytes <= capacity_bytes_,
              "ModelRegistry: model larger than the whole cache (" +
                  std::to_string(model->resident_bytes) + " bytes)");
  std::unique_lock lk(mu_);
  if (const auto it = entries_.find(model->name); it != entries_.end()) {
    resident_bytes_ -= it->second.model->resident_bytes;
    entries_.erase(it);
  }
  evict_to_fit_locked(model->resident_bytes);
  resident_bytes_ += model->resident_bytes;
  ++loads_;
  // Entry holds an atomic (not movable) — construct in place, then fill.
  Entry& e = entries_.try_emplace(model->name).first->second;
  e.model = model;
  e.last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
  obs::Registry::instance().gauge("serve.cache.bytes")
      .set(static_cast<double>(resident_bytes_));
  obs::Registry::instance().gauge("serve.cache.models")
      .set(static_cast<double>(entries_.size()));
  return model;
}

std::shared_ptr<const LoadedModel> ModelRegistry::get(const std::string& name) const {
  std::shared_lock lk(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::instance().counter("serve.cache.misses").add();
    GSX_FLIGHT(obs::EventKind::CacheMiss, 0, 0, 0, 0.0);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::instance().counter("serve.cache.hits").add();
  GSX_FLIGHT(obs::EventKind::CacheHit, 0, 0, 0, 0.0);
  it->second.last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                             std::memory_order_relaxed);
  return it->second.model;
}

bool ModelRegistry::unload(const std::string& name) {
  std::unique_lock lk(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return false;
  resident_bytes_ -= it->second.model->resident_bytes;
  entries_.erase(it);
  obs::Registry::instance().gauge("serve.cache.bytes")
      .set(static_cast<double>(resident_bytes_));
  obs::Registry::instance().gauge("serve.cache.models")
      .set(static_cast<double>(entries_.size()));
  return true;
}

RegistryStats ModelRegistry::stats() const {
  std::shared_lock lk(mu_);
  RegistryStats s;
  s.models = entries_.size();
  s.resident_bytes = resident_bytes_;
  s.capacity_bytes = capacity_bytes_;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.loads = loads_;
  s.evictions = evictions_;
  return s;
}

std::vector<std::string> ModelRegistry::names() const {
  std::shared_lock lk(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

}  // namespace gsx::serve
