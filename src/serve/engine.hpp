// Batched concurrent kriging engine.
//
// Many independent prediction requests against a cached factor arrive
// concurrently; answering each with its own Sigma_mn assembly + solve wastes
// the fixed per-pass cost. The engine micro-batches requests that target the
// same fitted model into ONE tiled assembly + triangular-solve pass
// (cholesky::tile_krige_solved on the runtime worker pool, amortizing the
// factor and the solve traversal across requests), then scatters per-request
// means/variances back to their futures.
//
// Admission control is a bounded queue with fast-fail: when full, submit()
// resolves the future immediately with an error instead of blocking the
// caller (load-shedding beats convoying). Each request carries a deadline;
// requests that expire while queued are failed without doing work.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "geostat/locations.hpp"
#include "serve/registry.hpp"

namespace gsx::serve {

struct EngineConfig {
  std::size_t workers = 1;            ///< solver threads per batch pass
  std::size_t queue_capacity = 256;   ///< admission bound, in requests
  std::size_t max_batch_points = 8192;  ///< micro-batch cap, in test points
};

struct PredictOutcome {
  bool ok = false;
  std::string error;                  ///< set when !ok ("queue full", "deadline ...")
  std::vector<double> mean;
  std::vector<double> variance;       ///< empty unless requested
  std::size_t batched_with = 0;       ///< total requests in the micro-batch
  std::uint64_t request_id = 0;       ///< id the request carried end-to-end
  double queue_seconds = 0.0;         ///< admission -> batch start
  double assemble_seconds = 0.0;      ///< Sigma_nm assembly inside the batch pass
  double solve_seconds = 0.0;         ///< triangular solve + mean/variance
  double total_seconds = 0.0;         ///< admission -> completion
  std::string flight_dump;            ///< flight-recorder JSONL path, on failure
};

struct EngineStats {
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t batches = 0;
  std::uint64_t batched_points = 0;
  std::size_t queue_depth = 0;
  std::size_t in_flight = 0;  ///< predicts inside a solver pass right now —
                              ///< queue_depth drops to 0 the moment a batch
                              ///< is formed, so this is what "busy" means
                              ///< during a micro-batched solve
};

class KrigingEngine {
 public:
  using Clock = std::chrono::steady_clock;

  /// `auto_start = false` defers the dispatcher thread so tests can fill the
  /// admission queue deterministically; call start() to begin serving.
  explicit KrigingEngine(EngineConfig cfg = {}, bool auto_start = true);
  ~KrigingEngine();  ///< drains and joins

  KrigingEngine(const KrigingEngine&) = delete;
  KrigingEngine& operator=(const KrigingEngine&) = delete;

  void start();

  /// Enqueue one prediction. Never blocks: a full queue or an expired
  /// deadline resolves the future immediately. `deadline` of
  /// Clock::time_point::max() means no deadline. `request_id` is the wire
  /// layer's request id (0 mints one here), stamped on flight-recorder
  /// events, spans and the outcome. `trace_id`/`parent_span` are the
  /// distributed trace context a router forwarded (0 = untraced): the
  /// batch's flight events carry trace_id, and the replica-side span events
  /// parent under parent_span.
  std::future<PredictOutcome> submit(std::shared_ptr<const LoadedModel> model,
                                     std::vector<geostat::Location> points,
                                     bool with_variance,
                                     Clock::time_point deadline = Clock::time_point::max(),
                                     std::uint64_t request_id = 0,
                                     std::uint64_t trace_id = 0,
                                     std::uint64_t parent_span = 0);

  /// Stop accepting, finish everything queued, join the dispatcher.
  /// Idempotent and safe to call from several threads at once (a signal
  /// watcher and the accept loop can race to drain); also called by the
  /// destructor.
  void drain();

  [[nodiscard]] EngineStats stats() const;

 private:
  struct Pending {
    std::shared_ptr<const LoadedModel> model;
    std::vector<geostat::Location> points;
    bool with_variance = true;
    std::uint64_t request_id = 0;
    std::uint64_t trace_id = 0;    ///< distributed trace context, 0 = none
    std::uint64_t parent_span = 0; ///< router-side span this hop nests under
    Clock::time_point deadline;
    Clock::time_point enqueued;
    std::promise<PredictOutcome> promise;
  };

  void dispatch_loop();
  void process_batch(std::vector<Pending> batch);

  const EngineConfig cfg_;
  mutable std::mutex mu_;
  std::mutex drain_mu_;  // serializes concurrent drain() callers around join
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  bool started_ = false;
  std::thread dispatcher_;
  EngineStats stats_{};
  std::atomic<std::size_t> in_flight_{0};  ///< live requests in process_batch
};

}  // namespace gsx::serve
