#include "serve/membership.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>

#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/listener.hpp"
#include "serve/wire.hpp"

namespace gsx::serve {

namespace {

/// Fleet-unique heartbeat sequence numbers. gsx_obs pairs a replica's
/// HeartbeatSend/Ack with the router's HeartbeatRecv by seq alone, so two
/// announcers both counting from 1 (separate replicas, or several in-process
/// replicas in a test fleet) would cross-pair — fold the pid into the high
/// bits and share one process-wide counter.
std::uint64_t next_heartbeat_seq() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  const auto pid = static_cast<std::uint64_t>(::getpid() & 0xFFFF);
  return (pid << 32) | (counter.fetch_add(1, std::memory_order_relaxed) + 1);
}

}  // namespace

const char* replica_state_name(ReplicaState s) noexcept {
  switch (s) {
    case ReplicaState::Alive: return "alive";
    case ReplicaState::Draining: return "draining";
    case ReplicaState::Dead: return "dead";
  }
  return "unknown";
}

std::uint64_t fleet_hash(const std::string& key) noexcept {
  // FNV-1a to fold the bytes, splitmix64 to mix: cheap, deterministic across
  // processes (placement must agree between router instances), and uniform
  // enough that 64 virtual nodes balance a handful of replicas.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

Membership::Membership(double stale_after_seconds, std::size_t virtual_nodes)
    : stale_after_(stale_after_seconds), virtual_nodes_(virtual_nodes) {}

void Membership::rebuild_ring_locked() {
  ring_.clear();
  ring_.reserve(names_.size() * virtual_nodes_);
  for (std::size_t e = 0; e < names_.size(); ++e) {
    for (std::size_t v = 0; v < virtual_nodes_; ++v) {
      ring_.push_back(
          RingPoint{fleet_hash(names_[e] + "#" + std::to_string(v)), e});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const RingPoint& a, const RingPoint& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.entry < b.entry;
  });
}

bool Membership::routable_locked(const Entry& e, Clock::time_point now) const {
  if (e.state != ReplicaState::Alive) return false;
  return std::chrono::duration<double>(now - e.last_heartbeat).count() <=
         stale_after_;
}

ReplicaInfo Membership::info_locked(const std::string& name, const Entry& e,
                                    Clock::time_point now) const {
  ReplicaInfo r;
  r.name = name;
  r.host = e.host;
  r.port = e.port;
  r.state = e.state;
  r.heartbeat_age_seconds =
      std::chrono::duration<double>(now - e.last_heartbeat).count();
  r.heartbeats = e.heartbeats;
  r.queue_depth = e.queue_depth;
  r.inflight = e.inflight;
  return r;
}

bool Membership::join(const std::string& name, const std::string& host,
                      std::uint16_t port, Clock::time_point now) {
  std::lock_guard lk(mu_);
  const auto it = std::lower_bound(names_.begin(), names_.end(), name);
  bool changed;
  if (it != names_.end() && *it == name) {
    Entry& e = entries_[static_cast<std::size_t>(it - names_.begin())];
    changed = e.state != ReplicaState::Alive || !routable_locked(e, now);
    e.host = host;
    e.port = port;
    e.state = ReplicaState::Alive;
    e.last_heartbeat = now;
    ++e.heartbeats;
  } else {
    const std::size_t idx = static_cast<std::size_t>(it - names_.begin());
    names_.insert(it, name);
    Entry e;
    e.host = host;
    e.port = port;
    e.last_heartbeat = now;
    e.heartbeats = 1;
    entries_.insert(entries_.begin() + static_cast<std::ptrdiff_t>(idx),
                    std::move(e));
    rebuild_ring_locked();
    changed = true;
  }
  if (changed) {
    rehash_events_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::instance().counter("router.rehash_events").add();
    obs::log_info("router", "replica joined the routable set",
                  {obs::lf("replica", name),
                   obs::lf("endpoint", host + ":" + std::to_string(port))});
  }
  return changed;
}

bool Membership::heartbeat(const std::string& name, double queue_depth,
                           double inflight, Clock::time_point now) {
  std::lock_guard lk(mu_);
  const auto it = std::lower_bound(names_.begin(), names_.end(), name);
  if (it == names_.end() || *it != name) return false;
  Entry& e = entries_[static_cast<std::size_t>(it - names_.begin())];
  if (e.state != ReplicaState::Alive) return false;
  e.last_heartbeat = now;
  e.queue_depth = queue_depth;
  e.inflight = inflight;
  ++e.heartbeats;
  return true;
}

bool Membership::drain(const std::string& name) {
  std::lock_guard lk(mu_);
  const auto it = std::lower_bound(names_.begin(), names_.end(), name);
  if (it == names_.end() || *it != name) return false;
  Entry& e = entries_[static_cast<std::size_t>(it - names_.begin())];
  if (e.state == ReplicaState::Draining) return true;
  const bool was_routable = e.state == ReplicaState::Alive;
  e.state = ReplicaState::Draining;
  if (was_routable) {
    rehash_events_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::instance().counter("router.rehash_events").add();
  }
  return true;
}

bool Membership::mark_dead(const std::string& name) {
  std::lock_guard lk(mu_);
  const auto it = std::lower_bound(names_.begin(), names_.end(), name);
  if (it == names_.end() || *it != name) return false;
  Entry& e = entries_[static_cast<std::size_t>(it - names_.begin())];
  if (e.state == ReplicaState::Dead) return false;
  const bool was_routable = e.state == ReplicaState::Alive;
  e.state = ReplicaState::Dead;
  if (was_routable) {
    rehash_events_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::instance().counter("router.rehash_events").add();
    obs::log_warn("router", "replica marked dead", {obs::lf("replica", name)});
  }
  return true;
}

bool Membership::erase(const std::string& name) {
  std::lock_guard lk(mu_);
  const auto it = std::lower_bound(names_.begin(), names_.end(), name);
  if (it == names_.end() || *it != name) return false;
  const std::size_t idx = static_cast<std::size_t>(it - names_.begin());
  const bool was_routable = entries_[idx].state == ReplicaState::Alive;
  names_.erase(it);
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(idx));
  rebuild_ring_locked();
  if (was_routable) {
    rehash_events_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::instance().counter("router.rehash_events").add();
  }
  return true;
}

std::size_t Membership::expire_stale(Clock::time_point now) {
  std::lock_guard lk(mu_);
  std::size_t demoted = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& e = entries_[i];
    if (e.state != ReplicaState::Alive || routable_locked(e, now)) continue;
    e.state = ReplicaState::Dead;
    ++demoted;
    rehash_events_.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::instance().counter("router.rehash_events").add();
    obs::log_warn("router", "replica heartbeat went stale",
                  {obs::lf("replica", names_[i])});
  }
  return demoted;
}

std::optional<ReplicaInfo> Membership::owner(const std::string& model,
                                             Clock::time_point now) const {
  std::lock_guard lk(mu_);
  if (ring_.empty()) return std::nullopt;
  const std::uint64_t h = fleet_hash(model);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const RingPoint& p, std::uint64_t hash) { return p.hash < hash; });
  // Walk clockwise from the model's hash until a routable replica appears;
  // every dead/draining replica's arc falls through to its ring successor.
  for (std::size_t step = 0; step < ring_.size(); ++step, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    const Entry& e = entries_[it->entry];
    if (routable_locked(e, now)) return info_locked(names_[it->entry], e, now);
  }
  return std::nullopt;
}

std::vector<ReplicaInfo> Membership::snapshot(Clock::time_point now) const {
  std::lock_guard lk(mu_);
  std::vector<ReplicaInfo> out;
  out.reserve(names_.size());
  for (std::size_t i = 0; i < names_.size(); ++i)
    out.push_back(info_locked(names_[i], entries_[i], now));
  return out;
}

std::size_t Membership::alive_count(Clock::time_point now) const {
  std::lock_guard lk(mu_);
  std::size_t n = 0;
  for (const Entry& e : entries_)
    if (routable_locked(e, now)) ++n;
  return n;
}

std::uint64_t Membership::rehash_events() const noexcept {
  return rehash_events_.load(std::memory_order_relaxed);
}

// --- Announcer ---------------------------------------------------------------

Announcer::Announcer(Config cfg, std::function<ReplicaLoad()> load)
    : cfg_(std::move(cfg)), load_(std::move(load)) {}

Announcer::~Announcer() { stop(); }

void Announcer::start() {
  if (thread_.joinable()) return;
  stopping_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
}

void Announcer::stop() {
  std::lock_guard stop_lk(stop_mu_);  // two stoppers must not both join
  stopping_.store(true, std::memory_order_release);
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Announcer::loop() {
  WireClient client;
  bool registered = false;
  while (!stopping_.load(std::memory_order_acquire)) {
    if (!client.connected()) {
      registered = false;
      if (!client.dial_tcp(cfg_.router_host, cfg_.router_port)) {
        obs::log_warn("serve", "announcer cannot reach router, will retry",
                      {obs::lf("router", cfg_.router_host + ":" +
                                             std::to_string(cfg_.router_port))});
      }
    }
    if (client.connected()) {
      JsonValue::Object o;
      std::string response;
      bool beat = false;
      std::uint64_t seq = 0;
      if (!registered) {
        o["op"] = JsonValue("register");
        o["replica"] = JsonValue(cfg_.replica_name);
        o["host"] = JsonValue(cfg_.replica_host);
        o["port"] = JsonValue(static_cast<std::size_t>(cfg_.replica_port));
      } else {
        const ReplicaLoad load = load_ ? load_() : ReplicaLoad{};
        beat = true;
        seq = next_heartbeat_seq();
        o["op"] = JsonValue("heartbeat");
        o["replica"] = JsonValue(cfg_.replica_name);
        o["queue_depth"] = JsonValue(load.queue_depth);
        o["inflight"] = JsonValue(load.inflight);
        o["seq"] = JsonValue(static_cast<std::size_t>(seq));
      }
      // The send/ack bracket around the router's recv is the NTP-style
      // clock-offset sample gsx_obs uses to align this replica's dump.
      const double t0 = obs::now_seconds();
      if (beat) GSX_FLIGHT(obs::EventKind::HeartbeatSend, 0, seq, 0, 0.0);
      if (client.request(JsonValue(std::move(o)).dump(), &response)) {
        if (beat)
          GSX_FLIGHT(obs::EventKind::HeartbeatAck, 0, seq, 0,
                     obs::now_seconds() - t0);
        // An unknown-replica heartbeat answer means the router restarted:
        // fall back to register on the next beat.
        const JsonValue r = [&] {
          try {
            return JsonValue::parse(response);
          } catch (...) {
            return JsonValue();
          }
        }();
        const JsonValue* ok = r.find("ok");
        if (ok != nullptr && ok->is_bool() && ok->as_bool()) {
          registered = true;
          delivered_.fetch_add(1, std::memory_order_relaxed);
        } else {
          registered = false;
        }
      }
    }
    std::unique_lock lk(mu_);
    cv_.wait_for(lk, std::chrono::duration<double>(cfg_.heartbeat_seconds),
                 [this] { return stopping_.load(std::memory_order_acquire); });
  }
  // Best-effort goodbye so the router rehashes immediately instead of
  // waiting out the stale window.
  if (client.connected()) {
    JsonValue::Object o;
    o["op"] = JsonValue("drain");
    o["replica"] = JsonValue(cfg_.replica_name);
    o["goodbye"] = JsonValue(true);
    std::string response;
    client.request(JsonValue(std::move(o)).dump(), &response);
  }
}

}  // namespace gsx::serve
