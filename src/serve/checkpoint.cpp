#include "serve/checkpoint.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <span>
#include <system_error>
#include <type_traits>

#include "common/error.hpp"
#include "obs/log.hpp"
#include "tile/tile_codec.hpp"

namespace gsx::serve {

static_assert(std::endian::native == std::endian::little,
              "gsx-ckpt-v1 assumes a little-endian host");

namespace {

constexpr std::array<char, 8> kMagic = {'G', 'S', 'X', 'C', 'K', 'P', 'T', '1'};
constexpr std::uint32_t kVersion = 1;

constexpr std::uint32_t fourcc(const char (&s)[5]) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(s[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[3])) << 24;
}

constexpr std::uint32_t kTagMeta = fourcc("META");
constexpr std::uint32_t kTagLocs = fourcc("LOCS");
constexpr std::uint32_t kTagObsv = fourcc("OBSV");
constexpr std::uint32_t kTagFact = fourcc("FACT");
constexpr std::uint32_t kTagFitp = fourcc("FITP");

// --- byte-cursor helpers ---------------------------------------------------

using Bytes = std::vector<std::uint8_t>;

template <typename T>
void put(Bytes& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto base = out.size();
  out.resize(base + sizeof(v));
  std::memcpy(out.data() + base, &v, sizeof(v));
}

template <typename T>
T get(std::span<const std::uint8_t> in, std::size_t& off) {
  static_assert(std::is_trivially_copyable_v<T>);
  GSX_REQUIRE(off + sizeof(T) <= in.size(), "checkpoint: truncated section payload");
  T v;
  std::memcpy(&v, in.data() + off, sizeof(v));
  off += sizeof(v);
  return v;
}

void put_string(Bytes& out, const std::string& s) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

std::string get_string(std::span<const std::uint8_t> in, std::size_t& off) {
  const auto len = get<std::uint32_t>(in, off);
  GSX_REQUIRE(off + len <= in.size(), "checkpoint: truncated string");
  std::string s(reinterpret_cast<const char*>(in.data() + off), len);
  off += len;
  return s;
}

void put_doubles(Bytes& out, std::span<const double> v) {
  put<std::uint64_t>(out, v.size());
  const auto base = out.size();
  out.resize(base + v.size() * sizeof(double));
  if (!v.empty()) std::memcpy(out.data() + base, v.data(), v.size() * sizeof(double));
}

std::vector<double> get_doubles(std::span<const std::uint8_t> in, std::size_t& off) {
  const auto n = get<std::uint64_t>(in, off);
  GSX_REQUIRE(n <= (in.size() - off) / sizeof(double),
              "checkpoint: truncated double array");
  std::vector<double> v(n);
  if (n > 0) std::memcpy(v.data(), in.data() + off, n * sizeof(double));
  off += n * sizeof(double);
  return v;
}

// --- ModelConfig <-> bytes -------------------------------------------------
// Only the fields that shape the persisted factor and its prediction
// semantics are stored; runtime knobs (workers, scheduler, optimizer
// options) are the loader's choice.

void put_config(Bytes& out, const core::ModelConfig& c) {
  put<std::uint8_t>(out, static_cast<std::uint8_t>(c.variant));
  put<std::uint64_t>(out, c.tile_size);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(c.mp_rule));
  put<std::uint64_t>(out, c.band.fp64_band);
  put<std::uint64_t>(out, c.band.fp32_band);
  put<double>(out, c.eps_target);
  put<std::uint8_t>(out, c.allow_fp16 ? 1 : 0);
  put<std::uint8_t>(out, c.allow_bf16 ? 1 : 0);
  put<double>(out, c.tlr_tol);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(c.compression));
  put<std::uint8_t>(out, static_cast<std::uint8_t>(c.rounding));
  put<std::uint8_t>(out, c.auto_band ? 1 : 0);
  put<std::uint64_t>(out, c.band_size);
  put<double>(out, c.fluctuation);
  put<std::uint8_t>(out, c.lr_fp32 ? 1 : 0);
}

core::ModelConfig get_config(std::span<const std::uint8_t> in, std::size_t& off) {
  core::ModelConfig c;
  c.variant = static_cast<core::ComputeVariant>(get<std::uint8_t>(in, off));
  c.tile_size = get<std::uint64_t>(in, off);
  c.mp_rule = static_cast<cholesky::PrecisionRule>(get<std::uint8_t>(in, off));
  c.band.fp64_band = get<std::uint64_t>(in, off);
  c.band.fp32_band = get<std::uint64_t>(in, off);
  c.eps_target = get<double>(in, off);
  c.allow_fp16 = get<std::uint8_t>(in, off) != 0;
  c.allow_bf16 = get<std::uint8_t>(in, off) != 0;
  c.tlr_tol = get<double>(in, off);
  c.compression = static_cast<tlr::CompressionMethod>(get<std::uint8_t>(in, off));
  c.rounding = static_cast<tlr::RoundingMethod>(get<std::uint8_t>(in, off));
  c.auto_band = get<std::uint8_t>(in, off) != 0;
  c.band_size = get<std::uint64_t>(in, off);
  c.fluctuation = get<double>(in, off);
  c.lr_fp32 = get<std::uint8_t>(in, off) != 0;
  return c;
}

// --- sections --------------------------------------------------------------

struct Section {
  std::uint32_t tag = 0;
  Bytes payload;
};

void write_file(const std::string& path, const std::vector<Section>& sections) {
  Bytes out;
  out.insert(out.end(), kMagic.begin(), kMagic.end());
  put<std::uint32_t>(out, kVersion);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(sections.size()));
  for (const Section& s : sections) {
    put<std::uint32_t>(out, s.tag);
    put<std::uint32_t>(out, 0);
    put<std::uint64_t>(out, s.payload.size());
    put<std::uint32_t>(out, crc32(s.payload.data(), s.payload.size()));
    out.insert(out.end(), s.payload.begin(), s.payload.end());
  }

  // Atomic publish: a reader never sees a half-written checkpoint, and a
  // crash mid-save leaves any previous checkpoint intact.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  GSX_REQUIRE(f != nullptr, "checkpoint: cannot open " + tmp + " for writing");
  const std::size_t written = std::fwrite(out.data(), 1, out.size(), f);
  const bool flushed = std::fclose(f) == 0 && written == out.size();
  if (!flushed || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw InvalidArgument("checkpoint: failed to write " + path);
  }
}

Bytes read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  GSX_REQUIRE(f != nullptr, "checkpoint: cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  Bytes data(size > 0 ? static_cast<std::size_t>(size) : 0);
  const std::size_t got = data.empty() ? 0 : std::fread(data.data(), 1, data.size(), f);
  std::fclose(f);
  GSX_REQUIRE(got == data.size(), "checkpoint: short read from " + path);
  return data;
}

std::vector<Section> parse_sections(const Bytes& data, const std::string& path,
                                    bool verify_crc) {
  std::span<const std::uint8_t> in(data);
  std::size_t off = 0;
  GSX_REQUIRE(in.size() >= kMagic.size() + 8 &&
                  std::memcmp(in.data(), kMagic.data(), kMagic.size()) == 0,
              "checkpoint: " + path + " is not a gsx-ckpt file (bad magic)");
  off = kMagic.size();
  const auto version = get<std::uint32_t>(in, off);
  GSX_REQUIRE(version == kVersion,
              "checkpoint: " + path + " has unsupported version " +
                  std::to_string(version));
  const auto count = get<std::uint32_t>(in, off);
  GSX_REQUIRE(count <= 64, "checkpoint: implausible section count");
  std::vector<Section> sections(count);
  for (Section& s : sections) {
    s.tag = get<std::uint32_t>(in, off);
    (void)get<std::uint32_t>(in, off);  // reserved
    const auto bytes = get<std::uint64_t>(in, off);
    const auto crc = get<std::uint32_t>(in, off);
    GSX_REQUIRE(bytes <= in.size() - off,
                "checkpoint: " + path + " truncated mid-section");
    s.payload.assign(in.begin() + static_cast<std::ptrdiff_t>(off),
                     in.begin() + static_cast<std::ptrdiff_t>(off + bytes));
    off += bytes;
    if (verify_crc) {
      const std::uint32_t actual = crc32(s.payload.data(), s.payload.size());
      GSX_REQUIRE(actual == crc,
                  "checkpoint: " + path + " CRC mismatch (stored " +
                      std::to_string(crc) + ", computed " + std::to_string(actual) +
                      ") — file corrupted");
    }
  }
  return sections;
}

const Section& find_section(const std::vector<Section>& sections, std::uint32_t tag,
                            const std::string& path) {
  for (const Section& s : sections)
    if (s.tag == tag) return s;
  throw InvalidArgument("checkpoint: " + path + " is missing a required section");
}

bool has_section(const std::vector<Section>& sections, std::uint32_t tag) {
  for (const Section& s : sections)
    if (s.tag == tag) return true;
  return false;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  // One CRC32 for the whole system: checkpoints, the dist tile wire and
  // out-of-core spill files all share the tile codec's implementation.
  return tile::crc32(data, n);
}

void save_model_checkpoint(const std::string& path, const ModelCheckpoint& ckpt) {
  GSX_REQUIRE(ckpt.train_locs.size() == ckpt.z_train.size() &&
                  ckpt.factor.n() == ckpt.train_locs.size(),
              "save_model_checkpoint: inconsistent training data / factor");
  std::vector<Section> sections(4);

  sections[0].tag = kTagMeta;
  put_string(sections[0].payload, ckpt.kernel);
  put_doubles(sections[0].payload, ckpt.theta);
  put_config(sections[0].payload, ckpt.config);

  sections[1].tag = kTagLocs;
  put<std::uint64_t>(sections[1].payload, ckpt.train_locs.size());
  for (const geostat::Location& l : ckpt.train_locs) {
    put<double>(sections[1].payload, l.x);
    put<double>(sections[1].payload, l.y);
    put<double>(sections[1].payload, l.t);
  }

  sections[2].tag = kTagObsv;
  put_doubles(sections[2].payload, ckpt.z_train);

  sections[3].tag = kTagFact;
  Bytes& fact = sections[3].payload;
  put<std::uint64_t>(fact, ckpt.factor.n());
  put<std::uint64_t>(fact, ckpt.factor.tile_size());
  for (std::size_t j = 0; j < ckpt.factor.nt(); ++j)
    for (std::size_t i = j; i < ckpt.factor.nt(); ++i)
      tile::encode_tile(ckpt.factor.at(i, j), fact);

  write_file(path, sections);
  obs::log_info("serve", "model checkpoint saved",
                {obs::lf("path", path), obs::lf("kernel", ckpt.kernel),
                 obs::lf("n", static_cast<std::uint64_t>(ckpt.train_locs.size()))});
}

ModelCheckpoint load_model_checkpoint(const std::string& path) {
  const Bytes data = read_file(path);
  const std::vector<Section> sections = parse_sections(data, path, /*verify_crc=*/true);

  ModelCheckpoint ckpt;
  {
    const Section& s = find_section(sections, kTagMeta, path);
    std::span<const std::uint8_t> in(s.payload);
    std::size_t off = 0;
    ckpt.kernel = get_string(in, off);
    ckpt.theta = get_doubles(in, off);
    ckpt.config = get_config(in, off);
  }
  {
    const Section& s = find_section(sections, kTagLocs, path);
    std::span<const std::uint8_t> in(s.payload);
    std::size_t off = 0;
    const auto n = get<std::uint64_t>(in, off);
    GSX_REQUIRE(n >= 1 && n * 3 * sizeof(double) <= in.size() - off,
                "checkpoint: LOCS section truncated");
    ckpt.train_locs.resize(n);
    for (geostat::Location& l : ckpt.train_locs) {
      l.x = get<double>(in, off);
      l.y = get<double>(in, off);
      l.t = get<double>(in, off);
    }
  }
  {
    const Section& s = find_section(sections, kTagObsv, path);
    std::span<const std::uint8_t> in(s.payload);
    std::size_t off = 0;
    ckpt.z_train = get_doubles(in, off);
  }
  {
    const Section& s = find_section(sections, kTagFact, path);
    std::span<const std::uint8_t> in(s.payload);
    std::size_t off = 0;
    const auto n = get<std::uint64_t>(in, off);
    const auto ts = get<std::uint64_t>(in, off);
    GSX_REQUIRE(n == ckpt.train_locs.size() && ts >= 1,
                "checkpoint: factor extent does not match training data");
    ckpt.factor = tile::SymTileMatrix(n, ts);
    for (std::size_t j = 0; j < ckpt.factor.nt(); ++j)
      for (std::size_t i = j; i < ckpt.factor.nt(); ++i) {
        tile::Tile t = tile::decode_tile(in, off);
        GSX_REQUIRE(t.rows() == ckpt.factor.tile_dim(i) &&
                        t.cols() == ckpt.factor.tile_dim(j),
                    "checkpoint: tile extents disagree with factor layout");
        ckpt.factor.at(i, j) = std::move(t);
      }
    GSX_REQUIRE(off == in.size(), "checkpoint: trailing bytes in FACT section");
  }
  GSX_REQUIRE(ckpt.z_train.size() == ckpt.train_locs.size(),
              "checkpoint: observation count does not match locations");
  return ckpt;
}

void save_fit_checkpoint(const std::string& path, const FitCheckpoint& ckpt) {
  std::vector<Section> sections(2);
  sections[0].tag = kTagMeta;
  put_string(sections[0].payload, ckpt.kernel);
  put_doubles(sections[0].payload, ckpt.theta_best);
  put_config(sections[0].payload, core::ModelConfig{});

  sections[1].tag = kTagFitp;
  put_doubles(sections[1].payload, ckpt.theta_best);
  put<double>(sections[1].payload, ckpt.loglik_best);
  put<std::uint64_t>(sections[1].payload, ckpt.evaluations);
  write_file(path, sections);
}

FitCheckpoint load_fit_checkpoint(const std::string& path) {
  const Bytes data = read_file(path);
  const std::vector<Section> sections = parse_sections(data, path, /*verify_crc=*/true);
  FitCheckpoint ckpt;
  {
    const Section& s = find_section(sections, kTagMeta, path);
    std::span<const std::uint8_t> in(s.payload);
    std::size_t off = 0;
    ckpt.kernel = get_string(in, off);
  }
  {
    const Section& s = find_section(sections, kTagFitp, path);
    std::span<const std::uint8_t> in(s.payload);
    std::size_t off = 0;
    ckpt.theta_best = get_doubles(in, off);
    ckpt.loglik_best = get<double>(in, off);
    ckpt.evaluations = get<std::uint64_t>(in, off);
  }
  return ckpt;
}

CheckpointKind probe_checkpoint(const std::string& path) {
  const Bytes data = read_file(path);
  const std::vector<Section> sections = parse_sections(data, path, /*verify_crc=*/false);
  if (has_section(sections, kTagFact)) return CheckpointKind::Model;
  if (has_section(sections, kTagFitp)) return CheckpointKind::FitProgress;
  throw InvalidArgument("checkpoint: " + path + " has neither FACT nor FITP section");
}

bool checkpoint_valid(const std::string& path) noexcept {
  try {
    const Bytes data = read_file(path);
    const std::vector<Section> sections =
        parse_sections(data, path, /*verify_crc=*/true);
    return has_section(sections, kTagFact) || has_section(sections, kTagFitp);
  } catch (...) {
    return false;
  }
}

std::string resolve_store_checkpoint(const std::string& store_dir,
                                     const std::string& model) {
  GSX_REQUIRE(!store_dir.empty(), "resolve_store_checkpoint: empty store dir");
  namespace fs = std::filesystem;
  std::error_code ec;

  const fs::path flat = fs::path(store_dir) / (model + ".ckpt");
  if (fs::is_regular_file(flat, ec) && checkpoint_valid(flat.string()))
    return flat.string();

  const fs::path dir = fs::path(store_dir) / model;
  if (fs::is_directory(dir, ec)) {
    std::vector<std::string> versions;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      if (!entry.is_regular_file(ec)) continue;
      if (entry.path().extension() != ".ckpt") continue;  // skips .tmp partials
      versions.push_back(entry.path().string());
    }
    // Lexicographically last valid file is "newest": version file names are
    // sortable by construction (v0001.ckpt, 20260809T1200.ckpt, ...). A
    // corrupt or half-copied newest version falls back to its predecessor
    // instead of taking the replica down.
    std::sort(versions.begin(), versions.end());
    for (auto it = versions.rbegin(); it != versions.rend(); ++it) {
      if (checkpoint_valid(*it)) return *it;
      obs::log_warn("serve", "skipping invalid checkpoint in store",
                    {obs::lf("path", *it)});
    }
  }
  throw InvalidArgument("checkpoint store " + store_dir +
                        " has no valid checkpoint for model \"" + model + "\"");
}

}  // namespace gsx::serve
