#include "serve/listener.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "obs/export_prom.hpp"
#include "obs/log.hpp"

namespace gsx::serve {

bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

LineListener::LineListener(Config cfg, Handler handler)
    : cfg_(std::move(cfg)), handler_(std::move(handler)) {}

LineListener::~LineListener() { shutdown(); }

std::uint16_t LineListener::listen() {
  GSX_REQUIRE(listen_fd_ < 0, "LineListener::listen: already listening");
  std::uint16_t bound_port = 0;
  if (!cfg_.unix_path.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    GSX_REQUIRE(listen_fd_ >= 0, "socket(AF_UNIX) failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    GSX_REQUIRE(cfg_.unix_path.size() < sizeof(addr.sun_path),
                "unix socket path too long");
    std::strncpy(addr.sun_path, cfg_.unix_path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(cfg_.unix_path.c_str());  // stale socket from a previous run
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw InvalidArgument("bind(" + cfg_.unix_path + ") failed: " +
                            std::strerror(errno));
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    GSX_REQUIRE(listen_fd_ >= 0, "socket(AF_INET) failed");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // serving is local-only
    addr.sin_port = htons(cfg_.tcp_port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw InvalidArgument(std::string("bind(127.0.0.1) failed: ") +
                            std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    bound_port = ntohs(bound.sin_port);
  }
  GSX_REQUIRE(::listen(listen_fd_, 64) == 0, "listen() failed");
  running_.store(true, std::memory_order_release);
  if (cfg_.metrics_port >= 0) start_metrics_listener();
  obs::log_info(cfg_.log_tag.c_str(), "listening",
                {obs::lf("endpoint", cfg_.unix_path.empty()
                                         ? "127.0.0.1:" + std::to_string(bound_port)
                                         : cfg_.unix_path)});
  return bound_port;
}

void LineListener::start_metrics_listener() {
  metrics_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  GSX_REQUIRE(metrics_fd_ >= 0, "socket(AF_INET) for metrics failed");
  const int one = 1;
  ::setsockopt(metrics_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.metrics_port));
  if (::bind(metrics_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(metrics_fd_, 16) != 0) {
    const int saved = errno;
    ::close(metrics_fd_);
    metrics_fd_ = -1;
    throw InvalidArgument(std::string("metrics bind(127.0.0.1:") +
                          std::to_string(cfg_.metrics_port) +
                          ") failed: " + std::strerror(saved));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(metrics_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  metrics_port_ = ntohs(bound.sin_port);
  metrics_thread_ = std::thread([this] { metrics_loop(); });
  obs::log_info(cfg_.log_tag.c_str(), "metrics scrape endpoint listening",
                {obs::lf("endpoint", "127.0.0.1:" + std::to_string(metrics_port_))});
}

void LineListener::metrics_loop() {
  // Deliberately minimal HTTP/1.0: one request per connection, close after
  // the response. A Prometheus scraper needs nothing more, and anything more
  // would drag a web server into the serving daemon.
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(metrics_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // metrics fd closed by shutdown(), or fatal error
    }
    char buf[2048];
    std::string request;
    while (request.find("\r\n\r\n") == std::string::npos &&
           request.size() < std::size_t{16} * 1024) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      request.append(buf, static_cast<std::size_t>(n));
    }
    const bool get_root = request.rfind("GET / ", 0) == 0;
    const bool get_metrics = request.rfind("GET /metrics", 0) == 0;
    std::string response;
    if (get_root || get_metrics) {
      const std::string body = cfg_.metrics_renderer
                                   ? cfg_.metrics_renderer()
                                   : obs::render_prometheus();
      response = "HTTP/1.0 200 OK\r\nContent-Type: " +
                 std::string(obs::kPrometheusContentType) +
                 "\r\nContent-Length: " + std::to_string(body.size()) +
                 "\r\nConnection: close\r\n\r\n" + body;
    } else {
      response =
          "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\nConnection: close\r\n\r\n";
    }
    write_all(fd, response.data(), response.size());
    ::close(fd);
  }
}

void LineListener::serve_forever() {
  GSX_REQUIRE(listen_fd_ >= 0, "LineListener::serve_forever: call listen() first");
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen fd closed by shutdown(), or fatal error
    }
    std::lock_guard lk(conn_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    reap_finished_locked();
    conn_fds_.insert(fd);
    conn_threads_.emplace_back([this, fd] { connection_loop(fd); });
  }
  running_.store(false, std::memory_order_release);
}

void LineListener::connection_loop(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t nl;
    while (open && (nl = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (line.empty()) continue;
      std::string response = handler_(line);
      response.push_back('\n');
      open = write_all(fd, response.data(), response.size());
    }
  }
  {
    std::lock_guard lk(conn_mu_);
    conn_fds_.erase(fd);
    finished_ids_.insert(std::this_thread::get_id());
  }
  ::close(fd);
}

void LineListener::reap_finished_locked() {
  // Bounded housekeeping: connection threads mark themselves finished on the
  // way out, so joining here never blocks on a live connection (the marked
  // thread has nothing left to run but close() + return).
  if (finished_ids_.empty()) return;
  auto it = conn_threads_.begin();
  while (it != conn_threads_.end()) {
    const std::thread::id id = it->get_id();
    if (finished_ids_.count(id) != 0) {
      it->join();
      finished_ids_.erase(id);
      it = conn_threads_.erase(it);
    } else {
      ++it;
    }
  }
}

void LineListener::shutdown() {
  std::lock_guard shutdown_lk(shutdown_mu_);
  stopping_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);  // wakes accept()
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (metrics_fd_ >= 0) {
    ::shutdown(metrics_fd_, SHUT_RDWR);  // wakes the metrics accept()
    ::close(metrics_fd_);
    metrics_fd_ = -1;
  }
  if (metrics_thread_.joinable()) metrics_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard lk(conn_mu_);
    // SHUT_RD (not RDWR): wakes connection threads blocked in read() while
    // keeping the write side alive, so a thread mid-predict still delivers
    // its response — a drain never drops an in-flight request.
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
    threads.swap(conn_threads_);
    finished_ids_.clear();
  }
  for (std::thread& t : threads)
    if (t.joinable()) t.join();
  if (!cfg_.unix_path.empty()) ::unlink(cfg_.unix_path.c_str());
  running_.store(false, std::memory_order_release);
}

// --- WireClient --------------------------------------------------------------

WireClient::~WireClient() { close(); }

WireClient::WireClient(WireClient&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

WireClient& WireClient::operator=(WireClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

bool WireClient::dial_tcp(const std::string& host, std::uint16_t port) {
  close();
  (void)host;  // the fleet is loopback-only; host names the peer in logs
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close();
    return false;
  }
  return true;
}

bool WireClient::dial_unix(const std::string& path) {
  close();
  if (path.empty() || path.size() >= sizeof(sockaddr_un{}.sun_path)) return false;
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close();
    return false;
  }
  return true;
}

void WireClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buffer_.clear();
}

bool WireClient::request(const std::string& line, std::string* response) {
  if (fd_ < 0) return false;
  std::string out = line;
  out.push_back('\n');
  if (!write_all(fd_, out.data(), out.size())) {
    close();
    return false;
  }
  char chunk[4096];
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      response->assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return true;
    }
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      close();
      return false;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace gsx::serve
