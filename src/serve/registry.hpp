// Model registry + factor cache: named fitted models resident in memory,
// LRU-bounded by resident bytes, shared read access for concurrent
// prediction (fit once, load once, predict many).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "geostat/covariance.hpp"
#include "serve/checkpoint.hpp"

namespace gsx::serve {

/// An immutable fitted model shared (read-only) by concurrent predictions.
/// `kernel` is positioned at the fitted theta; `y_solved` caches
/// L^{-1} Z_n so every served request starts from the factored state.
struct LoadedModel {
  std::string name;
  std::string path;                     ///< checkpoint file of origin ("" if in-memory)
  std::unique_ptr<const geostat::CovarianceModel> kernel;
  std::vector<double> theta;
  core::ModelConfig config;
  std::vector<geostat::Location> train_locs;
  std::vector<double> z_train;
  tile::SymTileMatrix factor{1, 1};
  std::vector<double> y_solved;         ///< L^{-1} Z_n, computed once at load
  std::size_t resident_bytes = 0;       ///< factor + training data footprint

  /// Build from a checkpoint file (CRC-verified) or an in-memory checkpoint:
  /// reconstructs the kernel from the registry name, forward-solves the
  /// observations once, and accounts the resident footprint.
  static std::shared_ptr<const LoadedModel> from_checkpoint(std::string name,
                                                            const std::string& path);
  static std::shared_ptr<const LoadedModel> from_checkpoint(std::string name,
                                                            ModelCheckpoint ckpt);
};

struct RegistryStats {
  std::size_t models = 0;
  std::size_t resident_bytes = 0;
  std::size_t capacity_bytes = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t loads = 0;
  std::uint64_t evictions = 0;
};

/// Named model cache. get() takes a shared lock and bumps a per-entry
/// recency counter (atomic, no exclusive locking on the read path);
/// load()/unload() take the exclusive lock. When inserting pushes resident
/// bytes past the cap, least-recently-used models are evicted first —
/// in-flight predictions keep their shared_ptr, so eviction never
/// invalidates a running request.
class ModelRegistry {
 public:
  explicit ModelRegistry(std::size_t max_resident_bytes = std::size_t{1} << 30);

  /// Load from file and insert under `name`, replacing any previous entry
  /// with that name. Returns the loaded model.
  std::shared_ptr<const LoadedModel> load(const std::string& name,
                                          const std::string& path);
  /// Insert an already-built model (in-process use; benches, tests).
  std::shared_ptr<const LoadedModel> insert(std::shared_ptr<const LoadedModel> model);

  /// nullptr when absent.
  std::shared_ptr<const LoadedModel> get(const std::string& name) const;

  bool unload(const std::string& name);

  [[nodiscard]] RegistryStats stats() const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  struct Entry {
    std::shared_ptr<const LoadedModel> model;
    mutable std::atomic<std::uint64_t> last_used{0};
  };

  void evict_to_fit_locked(std::size_t incoming_bytes);

  const std::size_t capacity_bytes_;
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::size_t resident_bytes_ = 0;
  mutable std::atomic<std::uint64_t> clock_{0};
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::uint64_t loads_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace gsx::serve
