// Particle Swarm Optimization with parallel objective evaluation.
//
// The paper (Section VI-D) accelerates training by launching independent
// log-likelihood evaluations — one per particle — in an embarrassingly
// parallel fashion, synchronizing loosely each iteration; this is the weak
// scaling dimension on Fugaku. Here particles evaluate concurrently on the
// worker pool.
#pragma once

#include <cstdint>

#include "optim/nelder_mead.hpp"

namespace gsx::optim {

struct PsoOptions {
  std::size_t swarm_size = 16;
  std::size_t max_iters = 60;
  double inertia = 0.72;
  double cognitive = 1.49;  ///< pull toward the particle's own best
  double social = 1.49;     ///< pull toward the swarm best
  std::uint64_t seed = 1;
  std::size_t workers = 1;  ///< concurrent objective evaluations
  /// Stop early when the swarm best has not improved by ftol for
  /// `stall_iters` consecutive iterations.
  double ftol = 1.0e-8;
  std::size_t stall_iters = 10;
};

/// Minimize f over the box [lo, hi]. The objective MUST be safe to call
/// concurrently from `workers` threads (the MLE objective is: each call
/// builds its own covariance matrix).
OptimResult particle_swarm(const Objective& f, std::span<const double> lo,
                           std::span<const double> hi, const PsoOptions& opts = {});

}  // namespace gsx::optim
