#include "optim/nelder_mead.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"
#include "obs/health.hpp"
#include "obs/log.hpp"

namespace gsx::optim {

namespace {

/// Box <-> unconstrained transform: x = lo + (hi-lo) * sigmoid(u).
class BoxTransform {
 public:
  BoxTransform(std::span<const double> lo, std::span<const double> hi)
      : lo_(lo.begin(), lo.end()), hi_(hi.begin(), hi.end()) {
    GSX_REQUIRE(lo_.size() == hi_.size(), "BoxTransform: bound size mismatch");
    for (std::size_t i = 0; i < lo_.size(); ++i)
      GSX_REQUIRE(lo_[i] < hi_[i], "BoxTransform: lower bound must be below upper");
  }

  [[nodiscard]] std::vector<double> to_box(std::span<const double> u) const {
    std::vector<double> x(u.size());
    for (std::size_t i = 0; i < u.size(); ++i) {
      const double s = 1.0 / (1.0 + std::exp(-u[i]));
      x[i] = lo_[i] + (hi_[i] - lo_[i]) * s;
    }
    return x;
  }

  [[nodiscard]] std::vector<double> from_box(std::span<const double> x) const {
    std::vector<double> u(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      // Clamp strictly inside the box before the logit.
      const double w = (hi_[i] - lo_[i]);
      double s = (x[i] - lo_[i]) / w;
      s = std::clamp(s, 1e-6, 1.0 - 1e-6);
      u[i] = std::log(s / (1.0 - s));
    }
    return u;
  }

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
};

}  // namespace

OptimResult nelder_mead(const Objective& f, std::span<const double> x0,
                        std::span<const double> lo, std::span<const double> hi,
                        const NelderMeadOptions& opts) {
  const std::size_t n = x0.size();
  GSX_REQUIRE(n >= 1, "nelder_mead: empty parameter vector");
  GSX_REQUIRE(lo.size() == n && hi.size() == n, "nelder_mead: bound size mismatch");
  const BoxTransform box(lo, hi);

  OptimResult result;
  double last_eval = std::numeric_limits<double>::quiet_NaN();
  auto eval = [&](std::span<const double> u) {
    ++result.evals;
    const std::vector<double> x = box.to_box(u);
    const double v = f(x);
    last_eval = v;
    return std::isnan(v) ? std::numeric_limits<double>::infinity() : v;
  };

  // Initial simplex around the transformed start.
  std::vector<std::vector<double>> simplex(n + 1, box.from_box(x0));
  std::vector<double> fvals(n + 1);
  for (std::size_t i = 1; i <= n; ++i) simplex[i][i - 1] += opts.initial_step;
  for (std::size_t i = 0; i <= n; ++i) fvals[i] = eval(simplex[i]);
  obs::begin_convergence("nelder-mead", opts.ftol, 12);

  // Adaptive Nelder-Mead coefficients (Gao & Han) help in higher dimension.
  const double nd = static_cast<double>(n);
  const double alpha = 1.0;
  const double gamma = 1.0 + 2.0 / nd;
  const double rho = 0.75 - 1.0 / (2.0 * nd);
  const double sigma = 1.0 - 1.0 / nd;

  std::vector<std::size_t> order(n + 1);
  while (result.evals < opts.max_evals) {
    ++result.iterations;
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return fvals[a] < fvals[b]; });

    const std::size_t best = order[0];
    const std::size_t worst = order[n];
    const std::size_t second_worst = order[n - 1];

    // Convergence: spread of values and of vertices.
    double fspread = std::fabs(fvals[worst] - fvals[best]);
    double xspread = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      xspread = std::max(xspread, std::fabs(simplex[worst][i] - simplex[best][i]));
    obs::record_opt_iteration(fvals[best], last_eval, xspread);
    obs::log_debug("optim", "nelder-mead iteration",
                   {obs::lf("iter", static_cast<std::uint64_t>(result.iterations)),
                    obs::lf("best", fvals[best]), obs::lf("fspread", fspread),
                    obs::lf("xspread", xspread)});
    if (fspread < opts.ftol && xspread < opts.xtol) {
      result.converged = true;
      break;
    }

    // Centroid of all but the worst.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t v = 0; v <= n; ++v) {
      if (v == worst) continue;
      for (std::size_t i = 0; i < n; ++i) centroid[i] += simplex[v][i];
    }
    for (double& c : centroid) c /= nd;

    auto blend = [&](double coef) {
      std::vector<double> p(n);
      for (std::size_t i = 0; i < n; ++i)
        p[i] = centroid[i] + coef * (centroid[i] - simplex[worst][i]);
      return p;
    };

    const std::vector<double> reflected = blend(alpha);
    const double fr = eval(reflected);
    if (fr < fvals[best]) {
      const std::vector<double> expanded = blend(gamma);
      const double fe = eval(expanded);
      if (fe < fr) {
        simplex[worst] = expanded;
        fvals[worst] = fe;
      } else {
        simplex[worst] = reflected;
        fvals[worst] = fr;
      }
      continue;
    }
    if (fr < fvals[second_worst]) {
      simplex[worst] = reflected;
      fvals[worst] = fr;
      continue;
    }
    // Contraction (outside if the reflection improved on the worst).
    if (fr < fvals[worst]) {
      const std::vector<double> contracted = blend(rho);
      const double fc = eval(contracted);
      if (fc <= fr) {
        simplex[worst] = contracted;
        fvals[worst] = fc;
        continue;
      }
    } else {
      const std::vector<double> contracted = blend(-rho);
      const double fc = eval(contracted);
      if (fc < fvals[worst]) {
        simplex[worst] = contracted;
        fvals[worst] = fc;
        continue;
      }
    }
    // Shrink toward the best vertex.
    for (std::size_t v = 0; v <= n; ++v) {
      if (v == best) continue;
      for (std::size_t i = 0; i < n; ++i)
        simplex[v][i] = simplex[best][i] + sigma * (simplex[v][i] - simplex[best][i]);
      fvals[v] = eval(simplex[v]);
      if (result.evals >= opts.max_evals) break;
    }
  }

  obs::end_convergence(result.converged);
  const auto best_it = std::min_element(fvals.begin(), fvals.end());
  const std::size_t best_idx = static_cast<std::size_t>(best_it - fvals.begin());
  result.x = box.to_box(simplex[best_idx]);
  result.fval = fvals[best_idx];
  return result;
}

}  // namespace gsx::optim
