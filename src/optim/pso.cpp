#include "optim/pso.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/health.hpp"
#include "obs/log.hpp"
#include "runtime/task_graph.hpp"

namespace gsx::optim {

OptimResult particle_swarm(const Objective& f, std::span<const double> lo,
                           std::span<const double> hi, const PsoOptions& opts) {
  const std::size_t n = lo.size();
  GSX_REQUIRE(n >= 1 && hi.size() == n, "particle_swarm: bad bounds");
  GSX_REQUIRE(opts.swarm_size >= 2, "particle_swarm: need at least two particles");
  for (std::size_t i = 0; i < n; ++i)
    GSX_REQUIRE(lo[i] < hi[i], "particle_swarm: lower bound must be below upper");

  struct Particle {
    std::vector<double> x, v, best_x;
    double best_f = std::numeric_limits<double>::infinity();
    double f = std::numeric_limits<double>::infinity();
    Rng rng;
  };

  Rng master(opts.seed);
  std::vector<Particle> swarm(opts.swarm_size);
  for (auto& p : swarm) {
    p.rng = master.split();
    p.x.resize(n);
    p.v.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double w = hi[i] - lo[i];
      p.x[i] = lo[i] + w * p.rng.uniform();
      p.v[i] = w * (p.rng.uniform() - 0.5) * 0.2;
    }
    p.best_x = p.x;
  }

  OptimResult result;
  std::vector<double> gbest_x;
  double gbest_f = std::numeric_limits<double>::infinity();
  std::size_t stall = 0;
  obs::begin_convergence("pso", opts.ftol, std::max<std::size_t>(2, opts.stall_iters));

  for (std::size_t iter = 0; iter < opts.max_iters; ++iter) {
    ++result.iterations;
    // Parallel likelihood evaluations — the paper's weak-scaling axis.
    rt::parallel_for(0, swarm.size(), opts.workers, [&](std::size_t pi) {
      Particle& p = swarm[pi];
      const double v = f(p.x);
      p.f = std::isnan(v) ? std::numeric_limits<double>::infinity() : v;
    });
    result.evals += swarm.size();

    const double prev_gbest = gbest_f;
    double iter_best = std::numeric_limits<double>::infinity();
    for (const auto& p : swarm) iter_best = std::min(iter_best, p.f);
    for (auto& p : swarm) {
      if (p.f < p.best_f) {
        p.best_f = p.f;
        p.best_x = p.x;
      }
      if (p.f < gbest_f) {
        gbest_f = p.f;
        gbest_x = p.x;
      }
    }
    if (gbest_x.empty()) gbest_x = swarm.front().best_x;  // all-infeasible start
    const double improvement =
        std::isfinite(prev_gbest) ? prev_gbest - gbest_f : 0.0;
    obs::record_opt_iteration(gbest_f, iter_best, improvement);
    obs::log_debug("optim", "pso iteration",
                   {obs::lf("iter", static_cast<std::uint64_t>(iter)),
                    obs::lf("gbest", gbest_f), obs::lf("iter_best", iter_best)});
    if (prev_gbest - gbest_f < opts.ftol) {
      if (++stall >= opts.stall_iters) break;
    } else {
      stall = 0;
    }

    for (auto& p : swarm) {
      for (std::size_t i = 0; i < n; ++i) {
        const double r1 = p.rng.uniform();
        const double r2 = p.rng.uniform();
        p.v[i] = opts.inertia * p.v[i] +
                 opts.cognitive * r1 * (p.best_x[i] - p.x[i]) +
                 opts.social * r2 * (gbest_x[i] - p.x[i]);
        p.x[i] += p.v[i];
        // Reflective bounds keep particles inside the box.
        if (p.x[i] < lo[i]) {
          p.x[i] = lo[i] + (lo[i] - p.x[i]);
          p.v[i] = -p.v[i];
        }
        if (p.x[i] > hi[i]) {
          p.x[i] = hi[i] - (p.x[i] - hi[i]);
          p.v[i] = -p.v[i];
        }
        p.x[i] = std::clamp(p.x[i], lo[i], hi[i]);
      }
    }
  }

  result.x = gbest_x;
  result.fval = gbest_f;
  result.converged = std::isfinite(gbest_f);
  obs::end_convergence(result.converged);
  return result;
}

}  // namespace gsx::optim
