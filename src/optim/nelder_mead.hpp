// Derivative-free minimization for the MLE loop.
//
// The log-likelihood surface is smooth but derivatives of the Matérn family
// w.r.t. smoothness are awkward; ExaGeoStat optimizes with derivative-free
// methods (BOBYQA in the original, particle swarm for parallel training).
// Here: Nelder-Mead simplex over a logit-transformed box (bounds respected
// exactly) and PSO (see pso.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace gsx::optim {

/// Objective to MINIMIZE (the MLE drivers pass the negative log-likelihood).
/// May return +infinity for infeasible points (e.g. non-SPD covariance).
using Objective = std::function<double(std::span<const double>)>;

struct NelderMeadOptions {
  std::size_t max_evals = 600;
  double xtol = 1.0e-5;  ///< simplex spread tolerance (transformed space)
  double ftol = 1.0e-8;  ///< function spread tolerance
  /// Initial simplex step in the transformed (unconstrained) space.
  double initial_step = 0.25;
};

struct OptimResult {
  std::vector<double> x;
  double fval = 0.0;
  std::size_t evals = 0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Nelder-Mead on f over the box [lo, hi], started at x0 (clamped inside).
OptimResult nelder_mead(const Objective& f, std::span<const double> x0,
                        std::span<const double> lo, std::span<const double> hi,
                        const NelderMeadOptions& opts = {});

}  // namespace gsx::optim
