// Numerical-health ledger: runtime verification of the precision policy's
// accuracy promise, plus failure forensics.
//
// The adaptive Frobenius rule (paper Section VI-C) promises
//   ||A^ - A||_F <= eps * ||A||_F
// for the demoted matrix. The codebase decides demotions from that bound
// but never *checks* it; this ledger records, per demoted tile, the rule
// that fired, its norm, the per-tile error budget, the a-priori guaranteed
// error, and the *measured* storage perturbation — and aggregates them into
// a whole-matrix audit. It also collects TLR rank-vs-tolerance audits,
// NaN/Inf sentinel hits from assembly/conversion/compression, condition
// estimates, MLE convergence trajectories, and — when a factorization hits
// a non-SPD pivot — a forensic bundle naming the offending tile, its
// precision, its neighbors and the optimizer state at failure.
//
// Gating mirrors the metrics registry: every record call first checks one
// process-wide atomic (health_enabled(), relaxed load), so disabled cost in
// a hot path is a single predictable branch. Recording itself takes a
// mutex — health records are per-tile / per-iteration, never per-element.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/precision.hpp"

namespace gsx::obs {

/// Health recording switch, independent of the profiling switch
/// (obs::enabled()): a production run can audit numerics without paying for
/// flop accounting, and vice versa. Off by default.
[[nodiscard]] bool health_enabled() noexcept;
void set_health_enabled(bool on) noexcept;

// ---------------------------------------------------------------------------
// Precision-demotion audit.

/// One demoted dense tile: what the rule promised vs what the storage
/// rounding actually did.
struct DemotionRecord {
  std::uint32_t i = 0, j = 0;
  Precision chosen = Precision::FP64;
  double tile_norm = 0.0;      ///< ||A_ij||_F before demotion
  double budget = 0.0;         ///< per-tile budget eps * ||A||_F / NT
  double guaranteed_err = 0.0; ///< a-priori bound the rule checked
  double observed_err = 0.0;   ///< measured ||A^_ij - A_ij||_F
};

/// Context of one policy application (call once per apply, before the
/// per-tile records; repeated calls overwrite — the audit reflects the most
/// recent evaluation's matrix, while aggregates keep running maxima).
void record_bound_context(const char* rule, double eps_target, double global_norm,
                          std::size_t nt);
void record_demotion(const DemotionRecord& r);

/// Aggregated view of the demotion records (and of anything recorded since
/// the last reset, across evaluations).
struct BoundAudit {
  std::string rule;
  double eps_target = 0.0;
  double global_norm = 0.0;
  std::size_t nt = 0;
  std::size_t demoted_tiles = 0;   ///< every demotion seen since reset
  std::size_t recorded = 0;        ///< detail records kept (capped)
  std::size_t dropped = 0;         ///< detail records dropped by the cap
  /// max over tiles of observed_err / budget (<= 1 means every tile stayed
  /// inside its share of the global budget).
  double max_budget_ratio = 0.0;
  /// Frobenius sum of observed per-tile errors over the *last recorded
  /// context's* evaluation: sqrt(sum mult * err^2), mult 2 off-diagonal.
  double observed_total_err = 0.0;
  /// observed_total_err / global_norm — the quantity the paper bounds.
  double observed_rel_err = 0.0;
  bool bound_satisfied = true;     ///< observed_rel_err <= eps_target
};

// ---------------------------------------------------------------------------
// TLR compression audit.

struct TlrRecord {
  std::uint32_t i = 0, j = 0;
  std::uint32_t rank = 0;
  double tol = 0.0;           ///< absolute Frobenius tolerance requested
  double observed_err = 0.0;  ///< measured ||A - U V^T||_F
  bool fp32 = false;          ///< factors stored FP32
};
void record_tlr(const TlrRecord& r);

struct TlrAudit {
  std::size_t tiles = 0;
  std::size_t recorded = 0;
  std::size_t dropped = 0;
  double max_observed_err = 0.0;
  double max_tol = 0.0;
  bool within_tol = true;  ///< every observed_err <= its tol (small slack)
};

// ---------------------------------------------------------------------------
// NaN/Inf sentinels.

/// Record `count` non-finite values found at pipeline site `where`
/// ("assemble", "convert", "compress", "solve"); (i, j) the tile, or -1
/// when not tile-addressed.
void record_nonfinite(const char* where, long i, long j, std::size_t count);

struct NonfiniteRecord {
  std::string where;
  long i = -1, j = -1;
  std::size_t count = 0;
};

/// Total non-finite values seen since reset (cheap liveness check).
[[nodiscard]] std::uint64_t nonfinite_total() noexcept;

// ---------------------------------------------------------------------------
// Condition estimate.

struct ConditionEstimate {
  double lambda_max = 0.0;  ///< largest eigenvalue estimate (0 = unknown)
  double lambda_min = 0.0;  ///< smallest eigenvalue estimate (0 = unknown)
  std::size_t n = 0;
  std::size_t iterations = 0;
  std::string method;  ///< e.g. "power-iteration"

  [[nodiscard]] double cond2() const noexcept {
    return (lambda_min > 0.0) ? lambda_max / lambda_min : 0.0;
  }
};
void record_condition(const ConditionEstimate& c);

// ---------------------------------------------------------------------------
// MLE convergence monitor.

struct OptIteration {
  std::size_t iter = 0;
  double best_fval = 0.0;       ///< best objective so far (monotone)
  double candidate_fval = 0.0;  ///< this iteration's newest evaluation
  double step_norm = 0.0;       ///< optimizer step / spread measure
};

/// Stall / divergence detection over an optimizer trajectory. Standalone so
/// tests (and future optimizers) can drive it directly; the ledger owns one
/// per begin_convergence().
class ConvergenceMonitor {
 public:
  explicit ConvergenceMonitor(double ftol = 1.0e-10, std::size_t window = 12);

  void add(double best_fval, double candidate_fval, double step_norm);
  /// Call when the optimizer exits; a converged exit clears the stall flag
  /// (a legitimately converged run *looks* stalled by construction).
  void finish(bool converged);

  /// True when the last `window` iterations improved the best objective by
  /// less than ftol * max(1, |best|) while the optimizer kept moving.
  [[nodiscard]] bool stalled() const noexcept;
  /// True when the best value is still non-finite after `window` iterations
  /// or the last `window` candidate evaluations were all non-finite (the
  /// optimizer is wandering an infeasible / non-SPD region).
  [[nodiscard]] bool diverged() const noexcept;
  [[nodiscard]] const std::vector<OptIteration>& trajectory() const noexcept {
    return traj_;
  }
  [[nodiscard]] bool finished() const noexcept { return finished_; }
  [[nodiscard]] bool converged() const noexcept { return converged_; }

 private:
  double ftol_;
  std::size_t window_;
  std::vector<OptIteration> traj_;
  std::size_t nonfinite_streak_ = 0;
  bool finished_ = false;
  bool converged_ = false;
};

/// Open a convergence trajectory for `optimizer` ("nelder-mead", "pso").
/// No-op when disabled. One trajectory per fit; a new begin closes none —
/// finished or not, the previous trajectory is kept for the report.
void begin_convergence(const char* optimizer, double ftol, std::size_t window);
void record_opt_iteration(double best_fval, double candidate_fval, double step_norm);
void end_convergence(bool converged);

struct ConvergenceReport {
  std::string optimizer;
  std::vector<OptIteration> trajectory;
  bool stalled = false;
  bool diverged = false;
  bool converged = false;
};

// ---------------------------------------------------------------------------
// Failure forensics.

struct NeighborTile {
  std::uint32_t i = 0, j = 0;
  char code = '?';            ///< Tile::decision_code()
  std::uint32_t rank = 0;
  Precision precision = Precision::FP64;
};

/// Diagnostic bundle captured when a factorization or solve fails.
struct FailureRecord {
  std::string what;           ///< exception text
  long tile_i = -1, tile_j = -1;
  int pivot = 0;              ///< 1-based global pivot index
  Precision precision = Precision::FP64;
  double tile_norm = 0.0;
  std::string rule;           ///< active PrecisionRule name
  std::vector<NeighborTile> neighbors;
  /// Best-objective trajectory at failure time (filled by record_failure
  /// from the open convergence monitor when the caller leaves it empty).
  std::vector<double> trajectory;
};
void record_failure(FailureRecord r);

// ---------------------------------------------------------------------------
// Snapshot / report.

struct HealthSnapshot {
  BoundAudit bound;
  std::vector<DemotionRecord> demotions;
  TlrAudit tlr_audit;
  std::vector<TlrRecord> tlr;
  std::vector<NonfiniteRecord> nonfinite;
  std::vector<ConditionEstimate> conditions;
  std::vector<ConvergenceReport> convergence;
  std::vector<FailureRecord> failures;
};

[[nodiscard]] HealthSnapshot health_snapshot();
void reset_health();

/// Write the snapshot as a single JSON document ("gsx-health-v1"). Throws
/// InvalidArgument when the file cannot be written.
void write_health_json(const std::string& path);

}  // namespace gsx::obs
