#include "obs/report.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"
#include "obs/analytics.hpp"
#include "obs/flight.hpp"
#include "obs/flops.hpp"
#include "obs/health.hpp"
#include "obs/hwcounters.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace gsx::obs {

namespace {

constexpr std::string_view precision_label(std::size_t p) {
  return precision_name(static_cast<Precision>(p));
}

/// {"FP64": {"potrf": {"calls": c, "flops": f}, ...}, ...} — zero cells
/// omitted so reports stay readable at quickstart sizes.
void write_flop_mix(std::ostream& os, const FlopSnapshot& s, const std::string& indent) {
  os << "{";
  bool first_p = true;
  for (std::size_t p = 0; p < kNumPrecisions; ++p) {
    std::uint64_t row_total = 0;
    for (std::size_t o = 0; o < kNumKernelOps; ++o) row_total += s.calls[p][o];
    if (row_total == 0) continue;
    if (!first_p) os << ",";
    first_p = false;
    os << "\n" << indent << "  \"" << precision_label(p) << "\": {";
    bool first_o = true;
    for (std::size_t o = 0; o < kNumKernelOps; ++o) {
      if (s.calls[p][o] == 0) continue;
      if (!first_o) os << ", ";
      first_o = false;
      os << "\"" << kernel_op_name(static_cast<KernelOp>(o)) << "\": {\"calls\": "
         << s.calls[p][o] << ", \"flops\": " << s.flops[p][o] << "}";
    }
    os << "}";
  }
  if (!first_p) os << "\n" << indent;
  os << "}";
}

/// {"FP64->FP32": {"count": c, "elements": e}, ...}
void write_conversions(std::ostream& os, const FlopSnapshot& s, const std::string& indent) {
  os << "{";
  bool first = true;
  for (std::size_t f = 0; f < kNumPrecisions; ++f) {
    for (std::size_t t = 0; t < kNumPrecisions; ++t) {
      if (s.conv_count[f][t] == 0) continue;
      if (!first) os << ",";
      first = false;
      os << "\n" << indent << "  \"" << precision_label(f) << "->" << precision_label(t)
         << "\": {\"count\": " << s.conv_count[f][t] << ", \"elements\": "
         << s.conv_elems[f][t] << "}";
    }
  }
  if (!first) os << "\n" << indent;
  os << "}";
}

void write_tile_mix(std::ostream& os, const TileMix& m) {
  os << "{\"dense\": {";
  bool first = true;
  for (std::size_t p = 0; p < kNumPrecisions; ++p) {
    if (m.dense[p] == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << "\"" << precision_label(p) << "\": " << m.dense[p];
  }
  os << "}, \"lr_fp64\": " << m.lr64 << ", \"lr_fp32\": " << m.lr32
     << ", \"total\": " << m.total() << "}";
}

void write_rank_counts(std::ostream& os,
                       const std::map<std::size_t, std::size_t>& counts) {
  os << "{";
  bool first = true;
  for (const auto& [rank, n] : counts) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << rank << "\": " << n;
  }
  os << "}";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

void write_profile_json(const std::string& path) {
  std::ofstream os(path);
  GSX_REQUIRE(os.good(), "write_profile_json: cannot open " + path);
  os << std::setprecision(9);

  const FlopSnapshot totals = flop_snapshot();
  const std::vector<IterationRecord> iters = profile_iterations();
  const std::vector<Span> spans = trace_spans();

  // Execution analytics over this process's own flight history, plus the
  // hardware-counter roofline ledger — published as gauges first so the
  // metrics array below carries them too.
  const AnalyticsReport analytics =
      analyze(build_history(FlightRecorder::instance().snapshot()));
  export_analytics_metrics(analytics);
  const HwTotals hw = hw_totals();
  publish_hw_metrics();
  const RooflinePeaks peaks = roofline_peaks();
  const double ghz = hw.live ? hw.effective_ghz() : peaks.fallback_ghz;
  for (std::size_t p = 0; p < kNumPrecisions; ++p) {
    const double achieved = totals.gflops_at(static_cast<Precision>(p));
    const double peak = peaks.peak_gflops_per_ghz[p] * ghz;
    if (achieved <= 0.0 || peak <= 0.0) continue;
    Registry::instance()
        .gauge("la.roofline.pct." + std::string(precision_label(p)))
        .set(100.0 * achieved / peak);
  }

  const std::vector<MetricSample> metrics = Registry::instance().samples();

  os << "{\n";
  os << "  \"total_flops\": " << totals.total_flops() << ",\n";
  os << "  \"flops_by_precision\": {";
  {
    bool first = true;
    for (std::size_t p = 0; p < kNumPrecisions; ++p) {
      const std::uint64_t f = totals.flops_at(static_cast<Precision>(p));
      if (f == 0) continue;
      if (!first) os << ", ";
      first = false;
      os << "\"" << precision_label(p) << "\": " << f;
    }
  }
  os << "},\n";
  os << "  \"achieved_gflops_by_precision\": {";
  {
    // Achieved rates over the kernels wrapped in a KernelTimer; precisions
    // with flops but no timing coverage are omitted rather than guessed.
    bool first = true;
    for (std::size_t p = 0; p < kNumPrecisions; ++p) {
      const double g = totals.gflops_at(static_cast<Precision>(p));
      if (g <= 0.0) continue;
      if (!first) os << ", ";
      first = false;
      os << "\"" << precision_label(p) << "\": " << g;
    }
  }
  os << "},\n";
  os << "  \"total_conversions\": " << totals.total_conversions() << ",\n";
  os << "  \"total_converted_elements\": " << totals.total_converted_elems() << ",\n";
  os << "  \"flop_mix\": ";
  write_flop_mix(os, totals, "  ");
  os << ",\n  \"conversions\": ";
  write_conversions(os, totals, "  ");

  // Per-iteration records (one per likelihood evaluation / prediction).
  os << ",\n  \"iterations\": [";
  for (std::size_t i = 0; i < iters.size(); ++i) {
    const IterationRecord& it = iters[i];
    os << (i ? "," : "") << "\n    {\"index\": " << it.index << ", \"label\": \""
       << json_escape(it.label) << "\", \"seconds\": " << it.seconds << ",\n"
       << "     \"total_flops\": " << it.work.total_flops() << ",\n"
       << "     \"flop_mix\": ";
    write_flop_mix(os, it.work, "     ");
    os << ",\n     \"conversions\": ";
    write_conversions(os, it.work, "     ");
    os << ",\n     \"tile_mix\": ";
    write_tile_mix(os, it.tiles);
    os << ",\n     \"rank_histogram\": ";
    write_rank_counts(os, it.rank_counts);
    os << "}";
  }
  os << (iters.empty() ? "]" : "\n  ]");

  // Aggregate phase timings from the trace spans.
  os << ",\n  \"phase_seconds\": {";
  {
    std::map<std::string, double> phase_totals;
    for (const Span& s : spans)
      if (s.category == "phase") phase_totals[s.name] += s.end_seconds - s.start_seconds;
    bool first = true;
    for (const auto& [name, secs] : phase_totals) {
      if (!first) os << ", ";
      first = false;
      os << "\"" << json_escape(name) << "\": " << secs;
    }
  }
  os << "},\n";

  // Achieved-vs-peak roofline. "hwcounters" is "live" when perf_event
  // sampling contributed cycles, "unavailable" when perf_event_open is
  // denied here (containers), "off" when available but not armed — the
  // peak model then falls back to the injected measured clock.
  os << "  \"roofline\": {\"hwcounters\": \""
     << (hw.live ? "live" : (hw_available() ? "off" : "unavailable")) << "\"";
  os << ", \"cycles\": " << hw.cycles << ", \"instructions\": " << hw.instructions
     << ", \"llc_misses\": " << hw.llc_misses << ", \"sampled_scopes\": " << hw.scopes
     << ", \"ipc\": " << hw.ipc() << ", \"effective_ghz\": " << ghz;
  if (!peaks.isa.empty()) os << ", \"isa\": \"" << json_escape(peaks.isa) << "\"";
  os << ",\n   \"by_precision\": {";
  {
    bool first = true;
    for (std::size_t p = 0; p < kNumPrecisions; ++p) {
      const double achieved = totals.gflops_at(static_cast<Precision>(p));
      if (achieved <= 0.0) continue;
      const double peak = peaks.peak_gflops_per_ghz[p] * ghz;
      if (!first) os << ", ";
      first = false;
      os << "\"" << precision_label(p) << "\": {\"achieved_gflops\": " << achieved;
      if (peak > 0.0)
        os << ", \"peak_gflops\": " << peak
           << ", \"pct_of_peak\": " << 100.0 * achieved / peak;
      os << "}";
    }
  }
  os << "}},\n";

  // Execution-analytics summary (critical path, utilization, overlap) from
  // this process's flight history. docs/observability.md explains the terms.
  os << "  \"analytics\": ";
  os << analytics_json(analytics, "  ");
  os << ",\n";

  // Registry metrics.
  os << "  \"metrics\": [";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const MetricSample& m = metrics[i];
    os << (i ? "," : "") << "\n    {\"name\": \"" << json_escape(m.name) << "\", ";
    switch (m.kind) {
      case MetricSample::Kind::Counter:
        os << "\"type\": \"counter\", \"value\": " << static_cast<std::uint64_t>(m.value);
        break;
      case MetricSample::Kind::Gauge:
        os << "\"type\": \"gauge\", \"value\": " << m.value;
        break;
      case MetricSample::Kind::Histogram:
        os << "\"type\": \"histogram\", \"count\": " << m.count << ", \"sum\": " << m.sum
           << ", \"min\": " << m.min << ", \"max\": " << m.max << ", \"p50\": " << m.p50
           << ", \"p95\": " << m.p95 << ", \"p99\": " << m.p99;
        break;
    }
    os << "}";
  }
  os << (metrics.empty() ? "]" : "\n  ]") << "\n}\n";
  GSX_REQUIRE(os.good(), "write_profile_json: write failed for " + path);
}

void write_flops_csv(const std::string& path) {
  std::ofstream os(path);
  GSX_REQUIRE(os.good(), "write_flops_csv: cannot open " + path);
  os << "iteration,label,kernel,precision,calls,flops\n";
  const std::vector<IterationRecord> iters = profile_iterations();
  auto write_rows = [&os](long index, const std::string& label, const FlopSnapshot& s) {
    for (std::size_t p = 0; p < kNumPrecisions; ++p)
      for (std::size_t o = 0; o < kNumKernelOps; ++o) {
        if (s.calls[p][o] == 0) continue;
        os << index << "," << label << "," << kernel_op_name(static_cast<KernelOp>(o))
           << "," << precision_label(p) << "," << s.calls[p][o] << "," << s.flops[p][o]
           << "\n";
      }
    for (std::size_t f = 0; f < kNumPrecisions; ++f)
      for (std::size_t t = 0; t < kNumPrecisions; ++t) {
        if (s.conv_count[f][t] == 0) continue;
        os << index << "," << label << ",convert," << precision_label(f) << "->"
           << precision_label(t) << "," << s.conv_count[f][t] << ","
           << s.conv_elems[f][t] << "\n";
      }
  };
  for (const IterationRecord& it : iters)
    write_rows(static_cast<long>(it.index), it.label, it.work);
  write_rows(-1, "total", flop_snapshot());
  GSX_REQUIRE(os.good(), "write_flops_csv: write failed for " + path);
}

void reset_all() {
  Registry::instance().reset();
  reset_flops();
  reset_trace();
  reset_profile();
  reset_health();
  reset_hw();
}

}  // namespace gsx::obs
