#include "obs/trace.hpp"

#include <chrono>
#include <mutex>

#include "obs/metrics.hpp"

namespace gsx::obs {

namespace {

using clock = std::chrono::steady_clock;

clock::time_point epoch() {
  static const clock::time_point e = clock::now();
  return e;
}

std::mutex& trace_mutex() {
  static std::mutex m;
  return m;
}

std::vector<Span>& span_store() {
  static std::vector<Span> s;
  return s;
}

thread_local std::optional<TaskAnnotation> t_annotation;

}  // namespace

double now_seconds() noexcept {
  return std::chrono::duration<double>(clock::now() - epoch()).count();
}

void record_span(Span s) {
  if (!enabled()) return;
  std::lock_guard lk(trace_mutex());
  span_store().push_back(std::move(s));
}

std::vector<Span> trace_spans() {
  std::lock_guard lk(trace_mutex());
  return span_store();
}

void reset_trace() {
  std::lock_guard lk(trace_mutex());
  span_store().clear();
}

ScopedPhase::ScopedPhase(const char* name)
    : name_(name), start_(enabled() ? now_seconds() : -1.0) {}

ScopedPhase::~ScopedPhase() {
  if (start_ < 0.0 || !enabled()) return;
  Span s;
  s.name = name_;
  s.category = "phase";
  s.tid = kPipelineTid;
  s.start_seconds = start_;
  s.end_seconds = now_seconds();
  record_span(std::move(s));
}

void annotate_task(Precision p, std::int64_t rank, std::uint64_t flops) noexcept {
  if (!enabled()) return;
  t_annotation = TaskAnnotation{p, rank, flops};
}

std::optional<TaskAnnotation> take_task_annotation() noexcept {
  std::optional<TaskAnnotation> out;
  t_annotation.swap(out);
  return out;
}

std::string annotation_args(const TaskAnnotation& a) {
  std::string out = "\"precision\": \"";
  out += precision_name(a.precision);
  out += "\"";
  if (a.rank >= 0) {
    out += ", \"rank\": ";
    out += std::to_string(a.rank);
  }
  if (a.flops > 0) {
    out += ", \"flops\": ";
    out += std::to_string(a.flops);
  }
  return out;
}

}  // namespace gsx::obs
