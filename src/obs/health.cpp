#include "obs/health.hpp"

#include <atomic>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <mutex>
#include <utility>

#include "common/error.hpp"

namespace gsx::obs {

namespace {

std::atomic<bool> g_health{false};
std::atomic<std::uint64_t> g_nonfinite_total{0};

/// Detail-record cap: aggregates stay exact past it; the drop counters keep
/// the truncation visible in the report (never a silent cap).
constexpr std::size_t kMaxDetailRecords = 4096;

struct Store {
  std::mutex mutex;

  BoundAudit bound;
  std::vector<DemotionRecord> demotions;
  double demotion_sum_sq = 0.0;  ///< running sum mult * err^2, current context

  TlrAudit tlr_audit;
  std::vector<TlrRecord> tlr;

  std::vector<NonfiniteRecord> nonfinite;
  std::vector<ConditionEstimate> conditions;

  std::vector<ConvergenceReport> convergence;
  ConvergenceMonitor monitor{};
  bool monitor_open = false;

  std::vector<FailureRecord> failures;
};

Store& store() {
  static Store s;
  return s;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// JSON numbers cannot be inf/nan; quote them so the document stays valid.
void write_num(std::ostream& os, double v) {
  if (std::isfinite(v))
    os << v;
  else
    os << '"' << (v > 0 ? "inf" : (v < 0 ? "-inf" : "nan")) << '"';
}

}  // namespace

bool health_enabled() noexcept { return g_health.load(std::memory_order_relaxed); }
void set_health_enabled(bool on) noexcept {
  g_health.store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Demotion audit.

void record_bound_context(const char* rule, double eps_target, double global_norm,
                          std::size_t nt) {
  if (!health_enabled()) return;
  Store& s = store();
  std::lock_guard lk(s.mutex);
  s.bound.rule = rule;
  s.bound.eps_target = eps_target;
  s.bound.global_norm = global_norm;
  s.bound.nt = nt;
  // A new context starts a new evaluation: the per-evaluation Frobenius sum
  // restarts, the maxima and counters keep accumulating.
  s.demotion_sum_sq = 0.0;
  s.demotions.clear();
  s.bound.recorded = 0;
}

void record_demotion(const DemotionRecord& r) {
  if (!health_enabled()) return;
  Store& s = store();
  std::lock_guard lk(s.mutex);
  ++s.bound.demoted_tiles;
  const double mult = (r.i == r.j) ? 1.0 : 2.0;
  s.demotion_sum_sq += mult * r.observed_err * r.observed_err;
  if (r.budget > 0.0)
    s.bound.max_budget_ratio =
        std::max(s.bound.max_budget_ratio, r.observed_err / r.budget);
  s.bound.observed_total_err = std::sqrt(s.demotion_sum_sq);
  s.bound.observed_rel_err = (s.bound.global_norm > 0.0)
                                 ? s.bound.observed_total_err / s.bound.global_norm
                                 : 0.0;
  s.bound.bound_satisfied = s.bound.eps_target <= 0.0 ||
                            s.bound.observed_rel_err <= s.bound.eps_target;
  if (s.demotions.size() < kMaxDetailRecords) {
    s.demotions.push_back(r);
    s.bound.recorded = s.demotions.size();
  } else {
    ++s.bound.dropped;
  }
}

// ---------------------------------------------------------------------------
// TLR audit.

void record_tlr(const TlrRecord& r) {
  if (!health_enabled()) return;
  Store& s = store();
  std::lock_guard lk(s.mutex);
  ++s.tlr_audit.tiles;
  s.tlr_audit.max_observed_err = std::max(s.tlr_audit.max_observed_err, r.observed_err);
  s.tlr_audit.max_tol = std::max(s.tlr_audit.max_tol, r.tol);
  // Slack factor: FP32-stored factors re-round the truncated representation,
  // so the observed error may exceed the SVD truncation tolerance by the
  // storage roundoff contribution.
  if (r.observed_err > r.tol * 1.05 + 1e-30) s.tlr_audit.within_tol = false;
  if (s.tlr.size() < kMaxDetailRecords) {
    s.tlr.push_back(r);
    s.tlr_audit.recorded = s.tlr.size();
  } else {
    ++s.tlr_audit.dropped;
  }
}

// ---------------------------------------------------------------------------
// NaN/Inf sentinels.

void record_nonfinite(const char* where, long i, long j, std::size_t count) {
  if (!health_enabled() || count == 0) return;
  g_nonfinite_total.fetch_add(count, std::memory_order_relaxed);
  Store& s = store();
  std::lock_guard lk(s.mutex);
  if (s.nonfinite.size() < kMaxDetailRecords)
    s.nonfinite.push_back({where, i, j, count});
}

std::uint64_t nonfinite_total() noexcept {
  return g_nonfinite_total.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Condition estimate.

void record_condition(const ConditionEstimate& c) {
  if (!health_enabled()) return;
  Store& s = store();
  std::lock_guard lk(s.mutex);
  if (s.conditions.size() < kMaxDetailRecords) s.conditions.push_back(c);
}

// ---------------------------------------------------------------------------
// Convergence monitor.

ConvergenceMonitor::ConvergenceMonitor(double ftol, std::size_t window)
    : ftol_(ftol), window_(window < 2 ? 2 : window) {}

void ConvergenceMonitor::add(double best_fval, double candidate_fval,
                             double step_norm) {
  OptIteration it;
  it.iter = traj_.size();
  it.best_fval = best_fval;
  it.candidate_fval = candidate_fval;
  it.step_norm = step_norm;
  traj_.push_back(it);
  if (std::isfinite(candidate_fval))
    nonfinite_streak_ = 0;
  else
    ++nonfinite_streak_;
}

void ConvergenceMonitor::finish(bool converged) {
  finished_ = true;
  converged_ = converged;
}

bool ConvergenceMonitor::stalled() const noexcept {
  if (converged_ || traj_.size() < window_) return false;
  const OptIteration& last = traj_.back();
  const OptIteration& ref = traj_[traj_.size() - window_];
  if (!std::isfinite(last.best_fval) || !std::isfinite(ref.best_fval)) return false;
  const double improvement = ref.best_fval - last.best_fval;
  return improvement < ftol_ * std::max(1.0, std::fabs(last.best_fval));
}

bool ConvergenceMonitor::diverged() const noexcept {
  if (traj_.size() >= window_ && !std::isfinite(traj_.back().best_fval)) return true;
  return nonfinite_streak_ >= window_;
}

void begin_convergence(const char* optimizer, double ftol, std::size_t window) {
  if (!health_enabled()) return;
  Store& s = store();
  std::lock_guard lk(s.mutex);
  if (s.monitor_open && !s.convergence.empty()) {
    // Previous trajectory was never closed (optimizer threw): flush what the
    // monitor collected so the report keeps the partial run.
    ConvergenceReport& prev = s.convergence.back();
    prev.trajectory = s.monitor.trajectory();
    prev.stalled = s.monitor.stalled();
    prev.diverged = s.monitor.diverged();
  }
  ConvergenceReport r;
  r.optimizer = optimizer;
  s.convergence.push_back(std::move(r));
  s.monitor = ConvergenceMonitor(ftol, window);
  s.monitor_open = true;
}

void record_opt_iteration(double best_fval, double candidate_fval, double step_norm) {
  if (!health_enabled()) return;
  Store& s = store();
  std::lock_guard lk(s.mutex);
  if (!s.monitor_open) return;
  s.monitor.add(best_fval, candidate_fval, step_norm);
}

void end_convergence(bool converged) {
  if (!health_enabled()) return;
  Store& s = store();
  std::lock_guard lk(s.mutex);
  if (!s.monitor_open || s.convergence.empty()) return;
  s.monitor.finish(converged);
  ConvergenceReport& r = s.convergence.back();
  r.trajectory = s.monitor.trajectory();
  r.stalled = s.monitor.stalled();
  r.diverged = s.monitor.diverged();
  r.converged = converged;
  s.monitor_open = false;
}

// ---------------------------------------------------------------------------
// Forensics.

void record_failure(FailureRecord r) {
  if (!health_enabled()) return;
  Store& s = store();
  std::lock_guard lk(s.mutex);
  if (r.trajectory.empty() && s.monitor_open) {
    const auto& traj = s.monitor.trajectory();
    r.trajectory.reserve(traj.size());
    for (const OptIteration& it : traj) r.trajectory.push_back(it.best_fval);
  }
  if (s.failures.size() < kMaxDetailRecords) s.failures.push_back(std::move(r));
}

// ---------------------------------------------------------------------------
// Snapshot / report.

HealthSnapshot health_snapshot() {
  Store& s = store();
  std::lock_guard lk(s.mutex);
  HealthSnapshot out;
  out.bound = s.bound;
  out.demotions = s.demotions;
  out.tlr_audit = s.tlr_audit;
  out.tlr = s.tlr;
  out.nonfinite = s.nonfinite;
  out.conditions = s.conditions;
  out.convergence = s.convergence;
  // Surface a still-open trajectory (fit in progress / optimizer threw).
  if (s.monitor_open && !out.convergence.empty()) {
    ConvergenceReport& r = out.convergence.back();
    r.trajectory = s.monitor.trajectory();
    r.stalled = s.monitor.stalled();
    r.diverged = s.monitor.diverged();
  }
  out.failures = s.failures;
  return out;
}

void reset_health() {
  Store& s = store();
  std::lock_guard lk(s.mutex);
  s.bound = BoundAudit{};
  s.demotions.clear();
  s.demotion_sum_sq = 0.0;
  s.tlr_audit = TlrAudit{};
  s.tlr.clear();
  s.nonfinite.clear();
  s.conditions.clear();
  s.convergence.clear();
  s.monitor = ConvergenceMonitor{};
  s.monitor_open = false;
  s.failures.clear();
  g_nonfinite_total.store(0, std::memory_order_relaxed);
}

void write_health_json(const std::string& path) {
  const HealthSnapshot h = health_snapshot();
  std::ofstream os(path);
  GSX_REQUIRE(os.good(), "write_health_json: cannot open " + path);
  os << std::setprecision(12);

  os << "{\n  \"schema\": \"gsx-health-v1\",\n";

  // Bound audit.
  os << "  \"bound_audit\": {\"rule\": \"" << json_escape(h.bound.rule)
     << "\", \"eps_target\": ";
  write_num(os, h.bound.eps_target);
  os << ", \"global_norm\": ";
  write_num(os, h.bound.global_norm);
  os << ", \"nt\": " << h.bound.nt
     << ", \"demoted_tiles\": " << h.bound.demoted_tiles
     << ", \"recorded\": " << h.bound.recorded << ", \"dropped\": " << h.bound.dropped
     << ", \"max_budget_ratio\": ";
  write_num(os, h.bound.max_budget_ratio);
  os << ", \"observed_total_err\": ";
  write_num(os, h.bound.observed_total_err);
  os << ", \"observed_rel_err\": ";
  write_num(os, h.bound.observed_rel_err);
  os << ", \"bound_satisfied\": " << (h.bound.bound_satisfied ? "true" : "false")
     << "},\n";

  // Per-tile demotion records.
  os << "  \"demotions\": [";
  for (std::size_t k = 0; k < h.demotions.size(); ++k) {
    const DemotionRecord& d = h.demotions[k];
    os << (k ? "," : "") << "\n    {\"tile\": [" << d.i << ", " << d.j
       << "], \"precision\": \"" << precision_name(d.chosen) << "\", \"tile_norm\": ";
    write_num(os, d.tile_norm);
    os << ", \"budget\": ";
    write_num(os, d.budget);
    os << ", \"guaranteed_err\": ";
    write_num(os, d.guaranteed_err);
    os << ", \"observed_err\": ";
    write_num(os, d.observed_err);
    os << "}";
  }
  os << (h.demotions.empty() ? "]" : "\n  ]") << ",\n";

  // TLR audit.
  os << "  \"tlr_audit\": {\"tiles\": " << h.tlr_audit.tiles
     << ", \"recorded\": " << h.tlr_audit.recorded
     << ", \"dropped\": " << h.tlr_audit.dropped << ", \"max_observed_err\": ";
  write_num(os, h.tlr_audit.max_observed_err);
  os << ", \"max_tol\": ";
  write_num(os, h.tlr_audit.max_tol);
  os << ", \"within_tol\": " << (h.tlr_audit.within_tol ? "true" : "false") << "},\n";
  os << "  \"tlr\": [";
  for (std::size_t k = 0; k < h.tlr.size(); ++k) {
    const TlrRecord& t = h.tlr[k];
    os << (k ? "," : "") << "\n    {\"tile\": [" << t.i << ", " << t.j
       << "], \"rank\": " << t.rank << ", \"tol\": ";
    write_num(os, t.tol);
    os << ", \"observed_err\": ";
    write_num(os, t.observed_err);
    os << ", \"fp32\": " << (t.fp32 ? "true" : "false") << "}";
  }
  os << (h.tlr.empty() ? "]" : "\n  ]") << ",\n";

  // NaN/Inf sentinels.
  os << "  \"nonfinite_total\": " << nonfinite_total() << ",\n";
  os << "  \"nonfinite\": [";
  for (std::size_t k = 0; k < h.nonfinite.size(); ++k) {
    const NonfiniteRecord& f = h.nonfinite[k];
    os << (k ? "," : "") << "\n    {\"where\": \"" << json_escape(f.where)
       << "\", \"tile\": [" << f.i << ", " << f.j << "], \"count\": " << f.count << "}";
  }
  os << (h.nonfinite.empty() ? "]" : "\n  ]") << ",\n";

  // Condition estimates.
  os << "  \"condition\": [";
  for (std::size_t k = 0; k < h.conditions.size(); ++k) {
    const ConditionEstimate& c = h.conditions[k];
    os << (k ? "," : "") << "\n    {\"lambda_max\": ";
    write_num(os, c.lambda_max);
    os << ", \"lambda_min\": ";
    write_num(os, c.lambda_min);
    os << ", \"cond2\": ";
    write_num(os, c.cond2());
    os << ", \"n\": " << c.n << ", \"iterations\": " << c.iterations
       << ", \"method\": \"" << json_escape(c.method) << "\"}";
  }
  os << (h.conditions.empty() ? "]" : "\n  ]") << ",\n";

  // Convergence.
  os << "  \"convergence\": [";
  for (std::size_t k = 0; k < h.convergence.size(); ++k) {
    const ConvergenceReport& c = h.convergence[k];
    os << (k ? "," : "") << "\n    {\"optimizer\": \"" << json_escape(c.optimizer)
       << "\", \"iterations\": " << c.trajectory.size()
       << ", \"stalled\": " << (c.stalled ? "true" : "false")
       << ", \"diverged\": " << (c.diverged ? "true" : "false")
       << ", \"converged\": " << (c.converged ? "true" : "false")
       << ",\n     \"trajectory\": [";
    for (std::size_t t = 0; t < c.trajectory.size(); ++t) {
      const OptIteration& it = c.trajectory[t];
      os << (t ? ", " : "") << "{\"iter\": " << it.iter << ", \"best\": ";
      write_num(os, it.best_fval);
      os << ", \"candidate\": ";
      write_num(os, it.candidate_fval);
      os << ", \"step\": ";
      write_num(os, it.step_norm);
      os << "}";
    }
    os << "]}";
  }
  os << (h.convergence.empty() ? "]" : "\n  ]") << ",\n";

  // Failures.
  os << "  \"failures\": [";
  for (std::size_t k = 0; k < h.failures.size(); ++k) {
    const FailureRecord& f = h.failures[k];
    os << (k ? "," : "") << "\n    {\"what\": \"" << json_escape(f.what)
       << "\", \"tile\": [" << f.tile_i << ", " << f.tile_j
       << "], \"pivot\": " << f.pivot << ", \"precision\": \""
       << precision_name(f.precision) << "\", \"tile_norm\": ";
    write_num(os, f.tile_norm);
    os << ", \"rule\": \"" << json_escape(f.rule) << "\",\n     \"neighbors\": [";
    for (std::size_t m = 0; m < f.neighbors.size(); ++m) {
      const NeighborTile& nb = f.neighbors[m];
      os << (m ? ", " : "") << "{\"tile\": [" << nb.i << ", " << nb.j
         << "], \"code\": \"" << nb.code << "\", \"rank\": " << nb.rank
         << ", \"precision\": \"" << precision_name(nb.precision) << "\"}";
    }
    os << "],\n     \"trajectory\": [";
    for (std::size_t m = 0; m < f.trajectory.size(); ++m) {
      os << (m ? ", " : "");
      write_num(os, f.trajectory[m]);
    }
    os << "]}";
  }
  os << (h.failures.empty() ? "]" : "\n  ]") << "\n}\n";
  GSX_REQUIRE(os.good(), "write_health_json: write failed for " + path);
}

}  // namespace gsx::obs
