#include "obs/flight_merge.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string_view>

namespace gsx::obs {

namespace {

// Flat-JSON field scanners. The dump writer (flight.cpp) emits fixed keys in
// a fixed order with no nesting, so a substring search per key is exact.

bool find_field(std::string_view line, std::string_view key, std::string_view* out) {
  const std::string pat = "\"" + std::string(key) + "\":";
  const std::size_t pos = line.find(pat);
  if (pos == std::string_view::npos) return false;
  std::size_t begin = pos + pat.size();
  std::size_t end = begin;
  if (begin < line.size() && line[begin] == '"') {
    ++begin;
    end = line.find('"', begin);
    if (end == std::string_view::npos) return false;
  } else {
    while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  }
  *out = line.substr(begin, end - begin);
  return true;
}

std::uint64_t field_u64(std::string_view line, std::string_view key) {
  std::string_view v;
  if (!find_field(line, key, &v)) return 0;
  return std::strtoull(std::string(v).c_str(), nullptr, 10);
}

double field_f64(std::string_view line, std::string_view key) {
  std::string_view v;
  if (!find_field(line, key, &v)) return 0.0;
  return std::strtod(std::string(v).c_str(), nullptr);
}

std::string field_str(std::string_view line, std::string_view key) {
  std::string_view v;
  if (!find_field(line, key, &v)) return {};
  return std::string(v);
}

double median(std::vector<double>& xs) {
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

bool same_event(const MergedEvent& a, const MergedEvent& b) {
  return a.pid == b.pid && a.thread == b.thread && a.t == b.t &&
         a.kind == b.kind && a.request == b.request && a.trace == b.trace &&
         a.a == b.a && a.b == b.b && a.v == b.v;
}

}  // namespace

FlightDump parse_flight_dump(const std::string& jsonl) {
  FlightDump dump;
  std::size_t pos = 0;
  while (pos < jsonl.size()) {
    std::size_t nl = jsonl.find('\n', pos);
    if (nl == std::string::npos) nl = jsonl.size();
    const std::string_view line = std::string_view(jsonl).substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty() || line.front() != '{') continue;
    const std::string kind = field_str(line, "kind");
    if (kind.empty()) continue;
    if (kind == "dump_header") {
      dump.process = field_str(line, "process");
      dump.pid = field_u64(line, "pid");
      dump.wall_anchor = field_f64(line, "wall_anchor");
      dump.mono_anchor = field_f64(line, "mono_anchor");
      dump.has_header = true;
      continue;
    }
    MergedEvent e;
    e.t = field_f64(line, "t");
    e.kind = kind;
    e.thread = field_u64(line, "thread");
    e.request = field_u64(line, "request");
    e.trace = field_u64(line, "trace");
    e.a = field_u64(line, "a");
    e.b = field_u64(line, "b");
    e.v = field_f64(line, "v");
    dump.events.push_back(std::move(e));
  }
  for (MergedEvent& e : dump.events) {
    e.process = dump.process;
    e.pid = dump.pid;
    e.t_wall = dump.has_header ? dump.wall_anchor + (e.t - dump.mono_anchor) : e.t;
  }
  return dump;
}

MergeResult merge_flight_dumps(const std::vector<FlightDump>& dumps) {
  MergeResult result;

  // Heartbeat pairing, keyed by (process, seq): a replica's send/ack bracket
  // the router's recv. Several dumps of the same process (in-process fleet
  // collection) overwrite each other harmlessly — the values are identical.
  struct Pair {
    double send = std::nan("");
    double ack = std::nan("");
  };
  std::map<std::pair<std::string, std::uint64_t>, Pair> pairs;
  std::map<std::uint64_t, double> recv_by_seq;  // reference clock (router)
  for (const FlightDump& d : dumps) {
    for (const MergedEvent& e : d.events) {
      if (e.kind == "heartbeat_send") pairs[{d.process, e.a}].send = e.t_wall;
      else if (e.kind == "heartbeat_ack") pairs[{d.process, e.a}].ack = e.t_wall;
      else if (e.kind == "heartbeat_recv") recv_by_seq[e.a] = e.t_wall;
    }
    if (result.clock_offsets.find(d.process) == result.clock_offsets.end())
      result.clock_offsets[d.process] = 0.0;
  }

  // NTP-style estimate per process: offset = recv - (send + ack)/2, the
  // router-clock error of the replica's request midpoint. The median over
  // all paired heartbeats rejects outliers from scheduling jitter.
  std::map<std::string, std::vector<double>> samples;
  for (const auto& [key, p] : pairs) {
    if (std::isnan(p.send) || std::isnan(p.ack)) continue;
    const auto recv = recv_by_seq.find(key.second);
    if (recv == recv_by_seq.end()) continue;
    samples[key.first].push_back(recv->second - 0.5 * (p.send + p.ack));
  }
  for (auto& [process, xs] : samples)
    if (!xs.empty()) result.clock_offsets[process] = median(xs);

  for (const FlightDump& d : dumps) {
    const double offset = result.clock_offsets.at(d.process);
    for (const MergedEvent& e : d.events) {
      result.timeline.push_back(e);
      result.timeline.back().t_wall += offset;
    }
  }
  std::stable_sort(result.timeline.begin(), result.timeline.end(),
                   [](const MergedEvent& a, const MergedEvent& b) {
                     return a.t_wall < b.t_wall;
                   });
  result.timeline.erase(
      std::unique(result.timeline.begin(), result.timeline.end(), same_event),
      result.timeline.end());

  for (std::size_t i = 0; i < result.timeline.size(); ++i)
    if (result.timeline[i].trace != 0)
      result.traces[result.timeline[i].trace].push_back(i);
  return result;
}

}  // namespace gsx::obs
