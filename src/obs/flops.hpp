// Structured flop / byte / conversion accounting for the adaptive Cholesky
// pipeline.
//
// The paper's performance claims are per-precision flop mixes (Fig. 8) and
// per-tile precision/rank decisions (Fig. 9); this ledger attributes every
// kernel invocation to a (kernel op, precision) cell and every in-flight
// cast to a (from, to) precision pair, with fixed atomic slots so the hot
// path is one relaxed fetch_add per kernel — no name lookups. Everything is
// gated on obs::enabled().
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string_view>

#include "common/bfloat16.hpp"
#include "common/half.hpp"
#include "common/precision.hpp"
#include "obs/hwcounters.hpp"
#include "obs/metrics.hpp"

namespace gsx::obs {

/// Pipeline kernel classes the ledger attributes work to.
enum class KernelOp : unsigned char {
  Potrf = 0,   ///< diagonal tile factorization
  Trsm,        ///< dense panel triangular solve
  Syrk,        ///< dense symmetric rank-k update
  Gemm,        ///< dense trailing update
  LrTrsm,      ///< low-rank panel triangular solve (V only)
  LrSyrk,      ///< low-rank SYRK onto a dense diagonal tile
  LrGemm,      ///< trailing update with >= 1 low-rank operand
  Compress,    ///< dense -> U V^T compression
  Assemble,    ///< covariance element generation
  Solve,       ///< triangular solves of the likelihood / prediction phase
  Krige,       ///< prediction-phase GEMM/GEMV work
  kCount
};

inline constexpr std::size_t kNumKernelOps = static_cast<std::size_t>(KernelOp::kCount);

[[nodiscard]] constexpr std::string_view kernel_op_name(KernelOp op) noexcept {
  switch (op) {
    case KernelOp::Potrf: return "potrf";
    case KernelOp::Trsm: return "trsm";
    case KernelOp::Syrk: return "syrk";
    case KernelOp::Gemm: return "gemm";
    case KernelOp::LrTrsm: return "lr_trsm";
    case KernelOp::LrSyrk: return "lr_syrk";
    case KernelOp::LrGemm: return "lr_gemm";
    case KernelOp::Compress: return "compress";
    case KernelOp::Assemble: return "assemble";
    case KernelOp::Solve: return "solve";
    case KernelOp::Krige: return "krige";
    case KernelOp::kCount: break;
  }
  return "?";
}

/// Map a storage scalar type to its Precision tag (for convert accounting).
template <typename T>
struct PrecisionOf;
template <> struct PrecisionOf<double> {
  static constexpr Precision value = Precision::FP64;
};
template <> struct PrecisionOf<float> {
  static constexpr Precision value = Precision::FP32;
};
template <> struct PrecisionOf<half> {
  static constexpr Precision value = Precision::FP16;
};
template <> struct PrecisionOf<bfloat16> {
  static constexpr Precision value = Precision::BF16;
};

/// Plain-value copy of the ledger (subtractable for per-iteration deltas).
struct FlopSnapshot {
  // [precision][kernel op]
  std::array<std::array<std::uint64_t, kNumKernelOps>, kNumPrecisions> flops{};
  std::array<std::array<std::uint64_t, kNumKernelOps>, kNumPrecisions> calls{};
  /// Wall seconds spent inside instrumented kernel bodies, per cell. Only
  /// kernels wrapped in a KernelTimer contribute; cells with flops but no
  /// recorded seconds are excluded from the achieved-rate queries below.
  std::array<std::array<double, kNumKernelOps>, kNumPrecisions> seconds{};
  // [from precision][to precision]
  std::array<std::array<std::uint64_t, kNumPrecisions>, kNumPrecisions> conv_count{};
  std::array<std::array<std::uint64_t, kNumPrecisions>, kNumPrecisions> conv_elems{};

  [[nodiscard]] std::uint64_t total_flops() const noexcept;
  [[nodiscard]] std::uint64_t flops_at(Precision p) const noexcept;
  [[nodiscard]] std::uint64_t total_conversions() const noexcept;
  [[nodiscard]] std::uint64_t total_converted_elems() const noexcept;

  /// Seconds with timing coverage at precision `p` (sum over timed cells).
  [[nodiscard]] double seconds_at(Precision p) const noexcept;
  /// Achieved GFLOP/s at precision `p`, computed only over cells that have
  /// recorded seconds (so untimed kernels don't inflate the rate). Returns
  /// 0 when nothing at `p` was timed.
  [[nodiscard]] double gflops_at(Precision p) const noexcept;

  /// Element-wise this - earlier (counters are monotonic between resets).
  [[nodiscard]] FlopSnapshot delta_since(const FlopSnapshot& earlier) const;
};

/// Record `flops` floating-point operations executed by `op` at storage /
/// kernel precision `p`. One relaxed fetch_add when enabled, one branch when
/// not.
void add_flops(KernelOp op, Precision p, std::uint64_t flops) noexcept;

/// Record one precision-conversion pass over `elems` elements.
void add_conversion(Precision from, Precision to, std::uint64_t elems) noexcept;

/// Record one batched BLAS submission of `count` same-shape ops executed as
/// `op` at precision `p`. Feeds the "la.batch.<op>.<precision>" histogram
/// (bounds 1..128, powers of two), which is how a factorization run shows
/// whether its trailing updates actually coalesced into batches or degraded
/// to per-op launches. Name lookup only happens when obs is enabled.
void record_batch(KernelOp op, Precision p, std::size_t count) noexcept;

/// Accumulate wall seconds spent inside an instrumented kernel body at
/// (op, p). Pairs with add_flops on the same cell to yield achieved GFLOP/s.
void add_kernel_seconds(KernelOp op, Precision p, double seconds) noexcept;

/// RAII wall-clock scope that charges its lifetime to (op, p) via
/// add_kernel_seconds. Wrap exactly the kernel body (not queueing or
/// conversion glue) to keep the achieved-rate accounting honest. Costs one
/// enabled() branch when observability is off. When hardware-counter
/// sampling is armed (set_hw_enabled + perf_event available), the same scope
/// also reads the cycles/instructions/LLC group at both ends and feeds the
/// roofline ledger (obs/hwcounters.hpp).
class KernelTimer {
 public:
  KernelTimer(KernelOp op, Precision p) noexcept
      : op_(op), p_(p), armed_(enabled()) {
    if (armed_) {
      start_ = std::chrono::steady_clock::now();
      if (hw_enabled()) hw_begin_ = hw_read();
    }
  }
  ~KernelTimer() {
    if (!armed_) return;
    const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - start_;
    add_kernel_seconds(op_, p_, dt.count());
    if (hw_begin_.valid) hw_accumulate(hw_begin_, hw_read(), dt.count());
  }
  KernelTimer(const KernelTimer&) = delete;
  KernelTimer& operator=(const KernelTimer&) = delete;

 private:
  KernelOp op_;
  Precision p_;
  bool armed_;
  std::chrono::steady_clock::time_point start_{};
  HwReading hw_begin_{};
};

/// Current ledger totals.
[[nodiscard]] FlopSnapshot flop_snapshot() noexcept;

/// Zero the ledger.
void reset_flops() noexcept;

// Standard LAPACK-style flop counts for the tile kernels.
[[nodiscard]] constexpr std::uint64_t potrf_flops(std::uint64_t n) noexcept {
  return n * n * n / 3 + n * n / 2 + n / 6;
}
/// B (m x n) := B * T^{-1} with an n x n triangle (or the transposed left
/// variants — same count).
[[nodiscard]] constexpr std::uint64_t trsm_flops(std::uint64_t m, std::uint64_t n) noexcept {
  return m * n * n;
}
/// C (n x n) += A A^T with A n x k.
[[nodiscard]] constexpr std::uint64_t syrk_flops(std::uint64_t n, std::uint64_t k) noexcept {
  return n * (n + 1) * k;
}
/// C (m x n) += A B^T with inner dimension k.
[[nodiscard]] constexpr std::uint64_t gemm_flops(std::uint64_t m, std::uint64_t n,
                                                 std::uint64_t k) noexcept {
  return 2 * m * n * k;
}

}  // namespace gsx::obs
