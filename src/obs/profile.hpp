// Per-MLE-iteration profiling: one record per likelihood evaluation with
// the iteration's flop/conversion delta, tile precision mix and TLR rank
// histogram — the data behind the paper's Fig. 8 (precision mix) and Fig. 9
// (rank/precision heat map) tables.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/precision.hpp"
#include "obs/flops.hpp"

namespace gsx::obs {

/// Tile composition of one assembled covariance matrix.
struct TileMix {
  std::array<std::size_t, kNumPrecisions> dense{};  ///< dense tiles by precision
  std::size_t lr64 = 0;                             ///< low-rank FP64 tiles
  std::size_t lr32 = 0;                             ///< low-rank FP32 tiles
  [[nodiscard]] std::size_t total() const noexcept {
    std::size_t t = lr64 + lr32;
    for (std::size_t d : dense) t += d;
    return t;
  }
};

/// One profiled pipeline iteration (one likelihood evaluation or one
/// prediction pass).
struct IterationRecord {
  std::size_t index = 0;
  std::string label;     ///< "evaluate" / "predict" / caller-supplied
  double seconds = 0.0;
  FlopSnapshot work;     ///< ledger delta attributed to this iteration
  TileMix tiles;
  /// rank -> number of low-rank tiles at that rank (Fig. 9 histogram).
  std::map<std::size_t, std::size_t> rank_counts;
};

/// Begin an iteration on the calling thread (snapshots the flop ledger).
/// No-op when disabled. Iterations may run concurrently (parallel PSO
/// evaluations); the ledger is process-global, so concurrent iterations
/// attribute overlapping work to each record — exact under sequential
/// optimizers (Nelder-Mead, the CLI default).
void begin_iteration(const char* label);

/// Attach the assembled matrix's tile mix and low-rank ranks to the
/// iteration currently open on this thread.
void record_iteration_tiles(const TileMix& mix, std::span<const std::size_t> lr_ranks);

/// Close the calling thread's iteration and append its record.
void end_iteration();

/// All completed iteration records since the last reset_profile().
[[nodiscard]] std::vector<IterationRecord> profile_iterations();

void reset_profile();

}  // namespace gsx::obs
