#include "obs/flight.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <mutex>

#include "obs/trace.hpp"

namespace gsx::obs {

namespace {

// Rings are heap-allocated on a thread's first event and registered here;
// they are never freed (a dead thread's last events stay dumpable, and the
// slot is adopted by a later thread). The array itself is lock-free to read
// — the fatal-signal dump walks it with plain atomic loads.
constexpr std::size_t kMaxRings = 128;
std::atomic<EventRing*> g_rings[kMaxRings];
std::atomic<std::size_t> g_ring_count{0};
std::mutex g_acquire_mutex;

std::mutex g_dump_mutex;
std::string& dump_path_storage() {
  static std::string p;
  return p;
}

std::mutex g_name_mutex;
std::string& process_name_storage() {
  static std::string n = "gsx";
  return n;
}

thread_local std::uint64_t t_current_trace = 0;

/// Thread-local ring handle; releases the ring for adoption on thread exit.
struct RingHandle {
  EventRing* ring = nullptr;
  std::uint16_t index = 0;
  ~RingHandle() {
    if (ring != nullptr) FlightRecorder::instance().release_ring(ring);
  }
};

thread_local RingHandle t_ring;

// ---------------------------------------------------------------------------
// Async-signal-safe formatting: no allocation, no stdio, no locale.

char* put_str(char* p, char* end, const char* s) {
  while (*s != '\0' && p < end) *p++ = *s++;
  return p;
}

char* put_u64(char* p, char* end, std::uint64_t v) {
  char tmp[20];
  int n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0 && p < end) *p++ = tmp[--n];
  return p;
}

/// Fixed-point %.6f for non-negative, seconds-scale doubles. Values that do
/// not fit (negative, non-finite, > ~5.8e11 s) degrade to "0.000000" or a
/// saturated integer part — acceptable for a crash dump.
char* put_f6(char* p, char* end, double v) {
  if (!(v >= 0.0)) return put_str(p, end, "0.000000");
  if (v > 5.8e11) return put_u64(p, end, static_cast<std::uint64_t>(v));
  const std::uint64_t micros = static_cast<std::uint64_t>(v * 1e6 + 0.5);
  p = put_u64(p, end, micros / 1000000);
  if (p < end) *p++ = '.';
  char frac[6];
  std::uint64_t f = micros % 1000000;
  for (int i = 5; i >= 0; --i) {
    frac[i] = static_cast<char>('0' + f % 10);
    f /= 10;
  }
  for (int i = 0; i < 6 && p < end; ++i) *p++ = frac[i];
  return p;
}

char* format_event_line(char* p, char* end, const Event& e) {
  p = put_str(p, end, "{\"t\":");
  p = put_f6(p, end, e.t);
  p = put_str(p, end, ",\"kind\":\"");
  p = put_str(p, end, std::string_view(event_kind_name(e.kind)).data());
  p = put_str(p, end, "\",\"thread\":");
  p = put_u64(p, end, e.thread);
  p = put_str(p, end, ",\"request\":");
  p = put_u64(p, end, e.request);
  p = put_str(p, end, ",\"trace\":");
  p = put_u64(p, end, e.trace);
  p = put_str(p, end, ",\"a\":");
  p = put_u64(p, end, e.a);
  p = put_str(p, end, ",\"b\":");
  p = put_u64(p, end, e.b);
  p = put_str(p, end, ",\"v\":");
  p = put_f6(p, end, e.v);
  p = put_str(p, end, "}\n");
  return p;
}

// Signal-safe copy of the process name (set_process_name keeps it in sync
// with the locked std::string used by the allocating paths).
char g_proc_name[64] = "gsx";

double wall_clock_seconds() noexcept {
  timespec ts{};
  ::clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// The dump header: the cross-process alignment datum. Both clocks are
/// sampled here, at dump time, so wall = wall_anchor + (t - mono_anchor)
/// converts any event timestamp in this dump to wall-clock time.
char* format_header_line(char* p, char* end) noexcept {
  const double mono = now_seconds();
  const double wall = wall_clock_seconds();
  p = put_str(p, end, "{\"t\":");
  p = put_f6(p, end, mono);
  p = put_str(p, end, ",\"kind\":\"dump_header\",\"process\":\"");
  p = put_str(p, end, g_proc_name);
  p = put_str(p, end, "\",\"pid\":");
  p = put_u64(p, end, static_cast<std::uint64_t>(::getpid()));
  p = put_str(p, end, ",\"wall_anchor\":");
  p = put_f6(p, end, wall);
  p = put_str(p, end, ",\"mono_anchor\":");
  p = put_f6(p, end, mono);
  p = put_str(p, end, "}\n");
  return p;
}

void write_fd_all(int fd, const char* data, std::size_t n) noexcept {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t w = ::write(fd, data + done, n - done);
    if (w <= 0) return;  // nothing sane to do in a signal handler
    done += static_cast<std::size_t>(w);
  }
}

std::atomic<int> g_fatal_fd{-1};

extern "C" void gsx_fatal_signal_handler(int sig) {
  const int fd = g_fatal_fd.load(std::memory_order_relaxed);
  if (fd >= 0) FlightRecorder::instance().dump_fd_signal_safe(fd);
  // Restore the default disposition and re-raise so the process still dies
  // with the original signal (core dumps, exit status).
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

void flight_record(EventKind kind, std::uint64_t request, std::uint64_t a,
                   std::uint64_t b, double v) noexcept {
  if (t_ring.ring == nullptr) {
    t_ring.ring = FlightRecorder::instance().acquire_ring(&t_ring.index);
    if (t_ring.ring == nullptr) return;  // > kMaxRings live threads: drop
  }
  Event e;
  e.t = now_seconds();
  e.kind = kind;
  e.thread = t_ring.index;
  e.request = request;
  e.trace = t_current_trace;
  e.a = a;
  e.b = b;
  e.v = v;
  t_ring.ring->record(e);
}

std::uint64_t set_current_trace(std::uint64_t trace) noexcept {
  const std::uint64_t prev = t_current_trace;
  t_current_trace = trace;
  return prev;
}

std::uint64_t current_trace() noexcept { return t_current_trace; }

std::uint64_t mint_span_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  const std::uint64_t n = next.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t pid = static_cast<std::uint64_t>(::getpid()) & 0xFFFF;
  return (pid << 48) | (n & 0xFFFFFFFFFFFFULL);
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder r;
  return r;
}

EventRing* FlightRecorder::acquire_ring(std::uint16_t* index_out) noexcept {
  std::lock_guard lk(g_acquire_mutex);
  const std::size_t count = g_ring_count.load(std::memory_order_relaxed);
  // Adopt a ring whose owning thread exited before growing the array.
  for (std::size_t i = 0; i < count; ++i) {
    EventRing* r = g_rings[i].load(std::memory_order_relaxed);
    if (r != nullptr && !r->in_use()) {
      r->set_in_use(true);
      *index_out = static_cast<std::uint16_t>(i);
      return r;
    }
  }
  if (count >= kMaxRings) return nullptr;
  EventRing* r = new EventRing();  // intentionally immortal (see file header)
  r->set_in_use(true);
  g_rings[count].store(r, std::memory_order_release);
  g_ring_count.store(count + 1, std::memory_order_release);
  *index_out = static_cast<std::uint16_t>(count);
  return r;
}

void FlightRecorder::release_ring(EventRing* ring) noexcept {
  ring->set_in_use(false);
}

std::vector<Event> FlightRecorder::snapshot() const {
  std::vector<Event> out;
  const std::size_t count = g_ring_count.load(std::memory_order_acquire);
  out.reserve(count * 64);
  for (std::size_t i = 0; i < count; ++i) {
    const EventRing* r = g_rings[i].load(std::memory_order_acquire);
    if (r != nullptr) r->snapshot_into(out);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Event& a, const Event& b) { return a.t < b.t; });
  return out;
}

std::string event_jsonl(const Event& e) {
  char buf[320];
  char* p = format_event_line(buf, buf + sizeof buf - 1, e);
  if (p > buf && p[-1] == '\n') --p;  // snapshot_jsonl joins with '\n' itself
  return std::string(buf, static_cast<std::size_t>(p - buf));
}

void FlightRecorder::set_process_name(std::string name) {
  std::lock_guard lk(g_name_mutex);
  std::strncpy(g_proc_name, name.c_str(), sizeof g_proc_name - 1);
  g_proc_name[sizeof g_proc_name - 1] = '\0';
  process_name_storage() = std::move(name);
}

std::string FlightRecorder::process_name() const {
  std::lock_guard lk(g_name_mutex);
  return process_name_storage();
}

std::string FlightRecorder::snapshot_jsonl() const {
  char hdr[320];
  char* p = format_header_line(hdr, hdr + sizeof hdr);
  std::string out(hdr, static_cast<std::size_t>(p - hdr));
  for (const Event& e : snapshot()) {
    out += event_jsonl(e);
    out.push_back('\n');
  }
  return out;
}

bool FlightRecorder::dump(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = snapshot_jsonl();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

void FlightRecorder::set_dump_path(std::string path) {
  std::lock_guard lk(g_dump_mutex);
  dump_path_storage() = std::move(path);
}

std::string FlightRecorder::dump_path() const {
  std::lock_guard lk(g_dump_mutex);
  return dump_path_storage();
}

std::string FlightRecorder::dump_on_failure() const {
  const std::string path = dump_path();
  if (path.empty()) return {};
  return dump(path) ? path : std::string{};
}

void FlightRecorder::dump_fd_signal_safe(int fd) const noexcept {
  // One line per consistent slot, formatted into a stack buffer. Reads the
  // same atomics as snapshot() but without allocation or sorting. The
  // header goes first so even a crash dump carries the wall-clock anchor.
  char buf[320];
  char* h = format_header_line(buf, buf + sizeof buf);
  write_fd_all(fd, buf, static_cast<std::size_t>(h - buf));
  const std::size_t count = g_ring_count.load(std::memory_order_acquire);
  Event e;
  for (std::size_t i = 0; i < count; ++i) {
    const EventRing* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    for (std::size_t slot = 0; slot < kRingCapacity; ++slot) {
      if (!ring->read_slot(slot, e)) continue;
      char* p = format_event_line(buf, buf + sizeof buf, e);
      write_fd_all(fd, buf, static_cast<std::size_t>(p - buf));
    }
  }
}

void FlightRecorder::install_fatal_handlers(int fd) noexcept {
  g_fatal_fd.store(fd, std::memory_order_relaxed);
  struct sigaction sa{};
  sa.sa_handler = gsx_fatal_signal_handler;
  ::sigaction(SIGSEGV, &sa, nullptr);
  ::sigaction(SIGBUS, &sa, nullptr);
  ::sigaction(SIGABRT, &sa, nullptr);
  ::sigaction(SIGFPE, &sa, nullptr);
}

std::uint64_t FlightRecorder::total_recorded() const noexcept {
  std::uint64_t total = 0;
  const std::size_t count = g_ring_count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < count; ++i) {
    const EventRing* r = g_rings[i].load(std::memory_order_acquire);
    if (r != nullptr) total += r->recorded();
  }
  return total;
}

}  // namespace gsx::obs
