#include "obs/profile.hpp"

#include <mutex>
#include <optional>

#include "obs/trace.hpp"

namespace gsx::obs {

namespace {

struct OpenIteration {
  IterationRecord record;
  FlopSnapshot at_begin;
  double start_seconds = 0.0;
};

thread_local std::optional<OpenIteration> t_open;

std::mutex& profile_mutex() {
  static std::mutex m;
  return m;
}

std::vector<IterationRecord>& iteration_store() {
  static std::vector<IterationRecord> v;
  return v;
}

}  // namespace

void begin_iteration(const char* label) {
  if (!enabled()) return;
  OpenIteration it;
  it.record.label = label;
  it.at_begin = flop_snapshot();
  it.start_seconds = now_seconds();
  t_open = std::move(it);
}

void record_iteration_tiles(const TileMix& mix, std::span<const std::size_t> lr_ranks) {
  if (!enabled() || !t_open) return;
  t_open->record.tiles = mix;
  t_open->record.rank_counts.clear();
  for (std::size_t r : lr_ranks) ++t_open->record.rank_counts[r];
}

void end_iteration() {
  if (!t_open) return;
  if (!enabled()) {
    t_open.reset();
    return;
  }
  OpenIteration it = std::move(*t_open);
  t_open.reset();
  it.record.seconds = now_seconds() - it.start_seconds;
  it.record.work = flop_snapshot().delta_since(it.at_begin);
  std::lock_guard lk(profile_mutex());
  it.record.index = iteration_store().size();
  iteration_store().push_back(std::move(it.record));
}

std::vector<IterationRecord> profile_iterations() {
  std::lock_guard lk(profile_mutex());
  return iteration_store();
}

void reset_profile() {
  std::lock_guard lk(profile_mutex());
  iteration_store().clear();
}

}  // namespace gsx::obs
