#include "obs/flops.hpp"

#include <atomic>
#include <string>

namespace gsx::obs {

namespace {

struct Ledger {
  std::array<std::array<std::atomic<std::uint64_t>, kNumKernelOps>, kNumPrecisions> flops{};
  std::array<std::array<std::atomic<std::uint64_t>, kNumKernelOps>, kNumPrecisions> calls{};
  std::array<std::array<std::atomic<double>, kNumKernelOps>, kNumPrecisions> seconds{};
  std::array<std::array<std::atomic<std::uint64_t>, kNumPrecisions>, kNumPrecisions>
      conv_count{};
  std::array<std::array<std::atomic<std::uint64_t>, kNumPrecisions>, kNumPrecisions>
      conv_elems{};
};

Ledger& ledger() {
  static Ledger l;
  return l;
}

}  // namespace

void add_flops(KernelOp op, Precision p, std::uint64_t flops) noexcept {
  if (!enabled()) return;
  Ledger& l = ledger();
  const auto pi = static_cast<std::size_t>(p);
  const auto oi = static_cast<std::size_t>(op);
  l.flops[pi][oi].fetch_add(flops, std::memory_order_relaxed);
  l.calls[pi][oi].fetch_add(1, std::memory_order_relaxed);
}

void add_kernel_seconds(KernelOp op, Precision p, double seconds) noexcept {
  if (!enabled()) return;
  Ledger& l = ledger();
  l.seconds[static_cast<std::size_t>(p)][static_cast<std::size_t>(op)].fetch_add(
      seconds, std::memory_order_relaxed);
}

void add_conversion(Precision from, Precision to, std::uint64_t elems) noexcept {
  if (!enabled()) return;
  Ledger& l = ledger();
  const auto fi = static_cast<std::size_t>(from);
  const auto ti = static_cast<std::size_t>(to);
  l.conv_count[fi][ti].fetch_add(1, std::memory_order_relaxed);
  l.conv_elems[fi][ti].fetch_add(elems, std::memory_order_relaxed);
}

void record_batch(KernelOp op, Precision p, std::size_t count) noexcept {
  if (!enabled()) return;
  std::string suffix{kernel_op_name(op)};
  suffix += '.';
  suffix += precision_name(p);
  Registry::instance()
      .histogram("la.batch." + suffix, {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0})
      .observe(static_cast<double>(count));
}

FlopSnapshot flop_snapshot() noexcept {
  const Ledger& l = ledger();
  FlopSnapshot s;
  for (std::size_t p = 0; p < kNumPrecisions; ++p) {
    for (std::size_t o = 0; o < kNumKernelOps; ++o) {
      s.flops[p][o] = l.flops[p][o].load(std::memory_order_relaxed);
      s.calls[p][o] = l.calls[p][o].load(std::memory_order_relaxed);
      s.seconds[p][o] = l.seconds[p][o].load(std::memory_order_relaxed);
    }
    for (std::size_t q = 0; q < kNumPrecisions; ++q) {
      s.conv_count[p][q] = l.conv_count[p][q].load(std::memory_order_relaxed);
      s.conv_elems[p][q] = l.conv_elems[p][q].load(std::memory_order_relaxed);
    }
  }
  return s;
}

void reset_flops() noexcept {
  Ledger& l = ledger();
  for (std::size_t p = 0; p < kNumPrecisions; ++p) {
    for (std::size_t o = 0; o < kNumKernelOps; ++o) {
      l.flops[p][o].store(0, std::memory_order_relaxed);
      l.calls[p][o].store(0, std::memory_order_relaxed);
      l.seconds[p][o].store(0.0, std::memory_order_relaxed);
    }
    for (std::size_t q = 0; q < kNumPrecisions; ++q) {
      l.conv_count[p][q].store(0, std::memory_order_relaxed);
      l.conv_elems[p][q].store(0, std::memory_order_relaxed);
    }
  }
}

std::uint64_t FlopSnapshot::total_flops() const noexcept {
  std::uint64_t t = 0;
  for (const auto& row : flops)
    for (std::uint64_t v : row) t += v;
  return t;
}

std::uint64_t FlopSnapshot::flops_at(Precision p) const noexcept {
  std::uint64_t t = 0;
  for (std::uint64_t v : flops[static_cast<std::size_t>(p)]) t += v;
  return t;
}

double FlopSnapshot::seconds_at(Precision p) const noexcept {
  double t = 0.0;
  for (double v : seconds[static_cast<std::size_t>(p)]) t += v;
  return t;
}

double FlopSnapshot::gflops_at(Precision p) const noexcept {
  const auto pi = static_cast<std::size_t>(p);
  double secs = 0.0;
  std::uint64_t timed_flops = 0;
  for (std::size_t o = 0; o < kNumKernelOps; ++o) {
    if (seconds[pi][o] > 0.0) {
      secs += seconds[pi][o];
      timed_flops += flops[pi][o];
    }
  }
  if (secs <= 0.0) return 0.0;
  return static_cast<double>(timed_flops) / secs / 1e9;
}

std::uint64_t FlopSnapshot::total_conversions() const noexcept {
  std::uint64_t t = 0;
  for (const auto& row : conv_count)
    for (std::uint64_t v : row) t += v;
  return t;
}

std::uint64_t FlopSnapshot::total_converted_elems() const noexcept {
  std::uint64_t t = 0;
  for (const auto& row : conv_elems)
    for (std::uint64_t v : row) t += v;
  return t;
}

FlopSnapshot FlopSnapshot::delta_since(const FlopSnapshot& earlier) const {
  FlopSnapshot d;
  for (std::size_t p = 0; p < kNumPrecisions; ++p) {
    for (std::size_t o = 0; o < kNumKernelOps; ++o) {
      d.flops[p][o] = flops[p][o] - earlier.flops[p][o];
      d.calls[p][o] = calls[p][o] - earlier.calls[p][o];
      d.seconds[p][o] = seconds[p][o] - earlier.seconds[p][o];
    }
    for (std::size_t q = 0; q < kNumPrecisions; ++q) {
      d.conv_count[p][q] = conv_count[p][q] - earlier.conv_count[p][q];
      d.conv_elems[p][q] = conv_elems[p][q] - earlier.conv_elems[p][q];
    }
  }
  return d;
}

}  // namespace gsx::obs
