// Flight-recorder event rings: lock-free, per-thread, fixed-size buffers of
// compact structured events.
//
// Every thread that records gets its own ring (registered with the process-
// wide FlightRecorder on first use), so the record path is a single-writer
// seqlock store — no locks, no allocation, wait-free for the writer. The
// ring keeps the last kRingCapacity events per thread; older events are
// overwritten in place. Readers (snapshot, crash dump) copy slots under the
// per-slot sequence and discard entries that were being rewritten mid-copy,
// so a snapshot never blocks or corrupts the hot path.
//
// Record sites compile away entirely when the GSX_TELEMETRY CMake option is
// OFF (the GSX_FLIGHT macro below), bounding the always-on cost to zero for
// builds that want it.
#pragma once

#include <atomic>
#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace gsx::obs {

/// Compact event vocabulary. Keep the numeric values stable: they appear in
/// JSONL dumps that outlive the process that wrote them.
enum class EventKind : std::uint16_t {
  RequestAdmit = 1,      ///< a = queue depth after admit
  RequestDispatch = 2,   ///< a = batch size (requests), b = batch points
  RequestComplete = 3,   ///< a = ok (1/0), v = total seconds
  RequestReject = 4,     ///< a = 1 queue-full, 2 deadline, 3 draining
  TaskReady = 10,        ///< a = task id, b = ready-queue depth
  TaskRun = 11,          ///< a = task id, b = worker id
  TaskDone = 12,         ///< a = task id, b = worker id, v = seconds
  TileDemotion = 20,     ///< a = tile i, b = tile j, v = observed error
  CacheHit = 30,         ///< request-scoped model lookup hit
  CacheMiss = 31,
  CacheEvict = 32,       ///< v = evicted bytes
  NumericalSentinel = 40,  ///< a = non-finite count, request-scoped
  SolveBegin = 50,       ///< a = train n, b = batch points
  SolveEnd = 51,         ///< v = solve seconds
  RouterForward = 60,    ///< a = fleet_hash(model), b = attempt (0-based),
                         ///< v = forward seconds; router-side hop of a
                         ///< request, same id as the replica-side events
  // Completed spans (distributed tracing): a = span id, b = parent span id,
  // v = duration seconds, t = span end. The span hierarchy crosses the
  // router->replica hop via the parent id carried on the wire.
  SpanRouterQueue = 61,     ///< router: parse + owner lookup before the hop
  SpanRouterForward = 62,   ///< router: one forward attempt round trip
  SpanRouterRetry = 63,     ///< router: failover retry (attempt >= 1)
  SpanReplicaQueue = 64,    ///< replica: admission -> batch start
  SpanReplicaAssemble = 65, ///< replica: Sigma_mn assembly inside the pass
  SpanReplicaSolve = 66,    ///< replica: triangular solve + mean/variance
  // Heartbeat request/response pairs: the clock-alignment datum for
  // cross-process dump merges (gsx_obs). a = heartbeat seq number.
  HeartbeatSend = 70,  ///< replica: request written to the router
  HeartbeatAck = 71,   ///< replica: response read back, v = round trip seconds
  HeartbeatRecv = 72,  ///< router: heartbeat handled
  // Distributed tile exchange and out-of-core spill (src/dist). All four
  // carry a = (tile_i << 32) | tile_j, b = payload bytes on the wire/disk,
  // v = the tile's storage Precision code — so a merged fleet timeline shows
  // which tile moved, how many bytes it cost and at which precision.
  TileSend = 80,  ///< worker: tile frame written to a peer
  TileRecv = 81,  ///< worker: tile frame received and CRC-verified
  SpillOut = 82,  ///< out-of-core pool: cold tile written to disk
  SpillIn = 83,   ///< out-of-core pool: spilled tile read back (CRC-checked)
  // Replayable DAG execution history (src/obs/analytics.hpp decodes these).
  // TaskStart/TaskEnd carry the full task identity in one word:
  //   a = (graph_gen << 48) | (worker << 40) | task_id
  // where graph_gen is a process-wide 16-bit run() generation (so concurrent
  // graphs in one process — e.g. bench_dist_cholesky's in-process ranks —
  // stay separable), worker is 8-bit (0xFF = externally-completed task), and
  // task_id is the 40-bit submission index. b packs the task-name prefix
  // before '(' as up to 8 little-endian ASCII bytes ("potrf", "gemm", ...),
  // the per-op-kind attribution key.
  TaskStart = 90,   ///< v = dependency (predecessor) count
  TaskEnd = 91,     ///< v = body duration seconds (0 for external tasks)
  // One event per DAG edge, recorded at run() start on the caller's ring:
  //   a = (graph_gen << 48) | (successor << 24) | predecessor
  // (24-bit task ids), b = packed op name of the successor. Edge events for
  // graphs beyond ~4k edges wrap the caller's ring oldest-first; analytics
  // degrades to interval-only reporting for the missing prefix.
  TaskDepEdge = 92,
};

[[nodiscard]] std::string_view event_kind_name(EventKind k) noexcept;

/// One flight-recorder event. `request` is 0 outside any request scope;
/// `a`/`b`/`v` are kind-specific (see EventKind). `trace` is the distributed
/// trace id stamped from the thread's ambient trace scope (0 = untraced).
struct Event {
  double t = 0.0;            ///< obs::now_seconds() at record time
  std::uint64_t request = 0; ///< request id (serve::mint_request_id), 0 = none
  std::uint64_t trace = 0;   ///< distributed trace id, 0 = none
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  double v = 0.0;
  EventKind kind = EventKind::RequestAdmit;
  std::uint16_t thread = 0;  ///< recorder-assigned ring index
};

/// Events per thread ring. Power of two so the write index wraps with a mask.
inline constexpr std::size_t kRingCapacity = 4096;

/// Single-writer ring of Events with per-slot seqlocks. The owning thread
/// calls record(); any thread may call snapshot_into() concurrently.
class EventRing {
 public:
  EventRing() = default;
  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  /// Owning thread only. Wait-free: two release stores around five relaxed
  /// payload stores.
  void record(const Event& e) noexcept;

  /// Copy every consistent, non-empty slot into `out` (appends). Entries
  /// caught mid-write (odd or changed sequence) are skipped, not blocked on.
  void snapshot_into(std::vector<Event>& out) const;

  /// Read one slot (0 <= i < kRingCapacity) if it holds a stable event.
  /// Async-signal-safe: atomic loads only, no allocation — the fatal-signal
  /// dump walks rings with this.
  bool read_slot(std::size_t i, Event& out) const noexcept;

  /// Total events ever recorded (monotonic; may exceed kRingCapacity).
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return recorded_.load(std::memory_order_relaxed);
  }

  /// Owner-thread liveness: a ring whose thread exited may be adopted by a
  /// new thread (FlightRecorder reuses the slot).
  void set_in_use(bool on) noexcept { in_use_.store(on, std::memory_order_release); }
  [[nodiscard]] bool in_use() const noexcept {
    return in_use_.load(std::memory_order_acquire);
  }

 private:
  struct Slot {
    // Seqlock: even = stable, odd = being written. Payload fields are
    // relaxed atomics so concurrent snapshot reads are race-free (and
    // tsan-clean) without making the writer take a lock.
    std::atomic<std::uint64_t> seq{0};
    std::atomic<double> t{0.0};
    std::atomic<std::uint64_t> request{0};
    std::atomic<std::uint64_t> trace{0};
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
    std::atomic<double> v{0.0};
    std::atomic<std::uint32_t> kind_thread{0};  ///< kind << 16 | thread
  };

  std::array<Slot, kRingCapacity> slots_;
  std::atomic<std::uint64_t> recorded_{0};  ///< next write position
  std::atomic<bool> in_use_{false};
};

}  // namespace gsx::obs

// Compile-time gate for record sites: with GSX_TELEMETRY=OFF the whole
// argument expression disappears (operands are never evaluated).
#ifndef GSX_TELEMETRY_DISABLED
#define GSX_FLIGHT(kind, request, a, b, v) \
  ::gsx::obs::flight_record((kind), (request), (a), (b), (v))
#else
#define GSX_FLIGHT(kind, request, a, b, v) \
  do {                                     \
  } while (false)
#endif
