#include "obs/analytics.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace gsx::obs {

std::uint64_t pack_op_name(std::string_view name) noexcept {
  std::uint64_t packed = 0;
  std::size_t n = 0;
  for (char c : name) {
    if (c == '(' || n == 8) break;
    packed |= static_cast<std::uint64_t>(static_cast<unsigned char>(c)) << (8 * n);
    ++n;
  }
  return packed;
}

std::string unpack_op_name(std::uint64_t packed) {
  std::string out;
  for (std::size_t i = 0; i < 8; ++i) {
    const char c = static_cast<char>((packed >> (8 * i)) & 0xFF);
    if (c == '\0') break;
    out += (c >= 0x20 && c < 0x7F) ? c : '?';
  }
  if (out.empty()) out = "task";
  return out;
}

namespace {

struct GraphKey {
  std::string process;
  std::uint64_t generation;
  bool operator<(const GraphKey& o) const {
    if (process != o.process) return process < o.process;
    return generation < o.generation;
  }
};

struct Edge {
  std::uint64_t pred;
  std::uint64_t succ;
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) >= 0x20) out += c;
  }
  return out;
}

/// Sorted, disjoint busy intervals; `contains` is a binary search.
struct IntervalSet {
  std::vector<std::pair<double, double>> spans;  ///< raw, merged on demand

  void add(double a, double b) {
    if (b > a) spans.emplace_back(a, b);
  }

  void merge() {
    std::sort(spans.begin(), spans.end());
    std::vector<std::pair<double, double>> out;
    for (const auto& s : spans) {
      if (!out.empty() && s.first <= out.back().second)
        out.back().second = std::max(out.back().second, s.second);
      else
        out.push_back(s);
    }
    spans = std::move(out);
  }

  [[nodiscard]] double total() const {
    double t = 0.0;
    for (const auto& s : spans) t += s.second - s.first;
    return t;
  }

  /// Requires merge() called first.
  [[nodiscard]] bool contains(double t) const {
    auto it = std::upper_bound(spans.begin(), spans.end(),
                               std::make_pair(t, std::numeric_limits<double>::max()));
    if (it == spans.begin()) return false;
    --it;
    return t >= it->first && t <= it->second;
  }
};

}  // namespace

ExecutionHistory build_history(const std::vector<MergedEvent>& timeline) {
  ExecutionHistory h;
  std::map<GraphKey, GraphExec> graphs;
  std::map<GraphKey, std::vector<Edge>> edges;

  for (const MergedEvent& e : timeline) {
    if (e.kind == "task_start" || e.kind == "task_end") {
      const std::uint64_t gen = e.a >> 48;
      const std::uint64_t worker = (e.a >> 40) & 0xFF;
      const std::uint64_t task = e.a & 0xFFFFFFFFFFull;
      const GraphKey key{e.process, gen};
      GraphExec& g = graphs[key];
      g.process = e.process;
      g.generation = gen;
      TaskExec& t = g.tasks[task];
      t.task = task;
      t.worker = worker;
      t.op = unpack_op_name(e.b);
      if (e.kind == "task_start") {
        t.start = e.t_wall;
        t.dep_count = static_cast<std::size_t>(e.v);
        if (t.end < t.start) t.end = t.start;
      } else {
        // External tasks record only task_end (duration 0): start == end.
        t.end = e.t_wall;
        if (t.start == 0.0 || t.start > t.end - e.v) t.start = t.end - e.v;
      }
    } else if (e.kind == "task_dep") {
      const std::uint64_t gen = e.a >> 48;
      edges[GraphKey{e.process, gen}].push_back(
          Edge{e.a & 0xFFFFFFull, (e.a >> 24) & 0xFFFFFFull});
    } else if (e.kind == "tile_send" || e.kind == "tile_recv") {
      h.comm.push_back(CommEvent{e.process, e.t_wall, e.b, e.kind == "tile_recv"});
    }
  }

  bool any = false;
  for (auto& [key, g] : graphs) {
    for (const Edge& ed : edges[key]) {
      auto ps = g.tasks.find(ed.pred);
      auto ss = g.tasks.find(ed.succ);
      if (ps == g.tasks.end() || ss == g.tasks.end()) continue;
      ss->second.preds.push_back(ed.pred);
      ++g.edges;
    }
    for (const auto& [id, t] : g.tasks) {
      if (!any) {
        h.t_min = t.start;
        h.t_max = t.end;
        any = true;
      }
      h.t_min = std::min(h.t_min, t.start);
      h.t_max = std::max(h.t_max, t.end);
    }
    h.graphs.push_back(std::move(g));
  }
  return h;
}

ExecutionHistory build_history(const std::vector<Event>& events,
                               const std::string& process) {
  std::vector<MergedEvent> timeline;
  timeline.reserve(events.size());
  for (const Event& e : events) {
    MergedEvent m;
    m.t_wall = e.t;
    m.t = e.t;
    m.process = process;
    m.kind = std::string(event_kind_name(e.kind));
    m.thread = e.thread;
    m.request = e.request;
    m.trace = e.trace;
    m.a = e.a;
    m.b = e.b;
    m.v = e.v;
    timeline.push_back(std::move(m));
  }
  return build_history(timeline);
}

CriticalPathReport critical_path(const GraphExec& g) {
  CriticalPathReport r;
  r.process = g.process;
  r.generation = g.generation;
  if (g.tasks.empty()) return r;

  // Longest duration-weighted chain ending at each task. Predecessor ids are
  // always smaller than successor ids (submission order), and std::map
  // iterates ascending, so one forward pass suffices.
  std::map<std::uint64_t, double> down;     // heaviest chain ending here
  std::map<std::uint64_t, std::int64_t> via;  // argmax predecessor (-1 = seed)
  double total_task_seconds = 0.0;
  std::uint64_t best_id = g.tasks.begin()->first;
  double best = -1.0;
  for (const auto& [id, t] : g.tasks) {
    double chain = 0.0;
    std::int64_t from = -1;
    for (const std::uint64_t p : t.preds) {
      const auto it = down.find(p);
      if (it != down.end() && it->second > chain) {
        chain = it->second;
        from = static_cast<std::int64_t>(p);
      }
    }
    chain += t.duration();
    down[id] = chain;
    via[id] = from;
    total_task_seconds += t.duration();
    if (chain > best) {
      best = chain;
      best_id = id;
    }
  }

  r.length_seconds = best;
  for (std::int64_t id = static_cast<std::int64_t>(best_id); id >= 0;
       id = via[static_cast<std::uint64_t>(id)]) {
    const TaskExec& t = g.tasks.at(static_cast<std::uint64_t>(id));
    r.path.push_back(t.task);
    r.op_seconds[t.op] += t.duration();
  }
  std::reverse(r.path.begin(), r.path.end());
  r.length_tasks = r.path.size();
  if (!r.path.empty()) {
    r.span_seconds =
        g.tasks.at(r.path.back()).end - g.tasks.at(r.path.front()).start;
  }
  if (total_task_seconds > 0.0) r.dominance = r.length_seconds / total_task_seconds;
  return r;
}

CriticalPathReport critical_path(const ExecutionHistory& h) {
  CriticalPathReport best;
  for (const GraphExec& g : h.graphs) {
    CriticalPathReport r = critical_path(g);
    if (r.length_seconds > best.length_seconds) best = std::move(r);
  }
  return best;
}

UtilizationReport utilization(const ExecutionHistory& h) {
  UtilizationReport r;
  r.window_seconds = h.t_max - h.t_min;

  struct Lane {
    IntervalSet busy;
    std::size_t tasks = 0;
    double queue_wait = 0.0;
  };
  std::map<std::pair<std::string, std::uint64_t>, Lane> lanes;

  for (const GraphExec& g : h.graphs) {
    // A task's ready time: all recorded predecessors done (seeds: the
    // graph's first observed start). start - ready is the scheduler-side
    // queue wait — time the task sat runnable without a worker.
    double g_t0 = 0.0;
    bool have_t0 = false;
    for (const auto& [id, t] : g.tasks) {
      if (!have_t0 || t.start < g_t0) g_t0 = t.start;
      have_t0 = true;
    }
    for (const auto& [id, t] : g.tasks) {
      if (t.worker == kExternalWorker) continue;
      Lane& lane = lanes[{g.process, t.worker}];
      lane.busy.add(t.start, t.end);
      ++lane.tasks;
      double ready = g_t0;
      for (const std::uint64_t p : t.preds) {
        const auto it = g.tasks.find(p);
        if (it != g.tasks.end()) ready = std::max(ready, it->second.end);
      }
      lane.queue_wait += std::max(0.0, t.start - ready);
    }
  }

  double sum = 0.0;
  double sumsq = 0.0;
  for (auto& [key, lane] : lanes) {
    lane.busy.merge();
    WorkerUtilization w;
    w.process = key.first;
    w.worker = key.second;
    w.tasks = lane.tasks;
    w.busy_seconds = lane.busy.total();
    w.queue_wait_seconds = lane.queue_wait;
    w.utilization = r.window_seconds > 0.0 ? w.busy_seconds / r.window_seconds : 0.0;
    r.process_busy_seconds[w.process] += w.busy_seconds;
    sum += w.busy_seconds;
    sumsq += w.busy_seconds * w.busy_seconds;
    r.workers.push_back(std::move(w));
  }
  const std::size_t n = r.workers.size();
  if (n > 0 && sumsq > 0.0)
    r.jain_fairness = (sum * sum) / (static_cast<double>(n) * sumsq);
  if (n > 0 && r.window_seconds > 0.0)
    r.parallel_efficiency = sum / (r.window_seconds * static_cast<double>(n));
  return r;
}

OverlapReport comm_overlap(const ExecutionHistory& h) {
  OverlapReport r;
  // Busy union per process (all workers, all graphs).
  std::map<std::string, IntervalSet> busy;
  for (const GraphExec& g : h.graphs)
    for (const auto& [id, t] : g.tasks)
      if (t.worker != kExternalWorker) busy[g.process].add(t.start, t.end);
  for (auto& [proc, set] : busy) set.merge();

  for (const CommEvent& c : h.comm) {
    ++r.comm_events;
    r.bytes_total += c.bytes;
    const auto it = busy.find(c.process);
    if (it != busy.end() && it->second.contains(c.t)) {
      ++r.overlapped_events;
      r.bytes_overlapped += c.bytes;
    }
  }
  if (r.comm_events > 0)
    r.overlap_fraction = static_cast<double>(r.overlapped_events) /
                         static_cast<double>(r.comm_events);
  return r;
}

AnalyticsReport analyze(const ExecutionHistory& h) {
  AnalyticsReport r;
  r.critical_path = critical_path(h);
  r.utilization = utilization(h);
  r.overlap = comm_overlap(h);
  return r;
}

void export_analytics_metrics(const AnalyticsReport& r) {
  auto& reg = Registry::instance();
  reg.gauge("obs.analytics.critical_path_seconds").set(r.critical_path.length_seconds);
  reg.gauge("obs.analytics.critical_path_tasks")
      .set(static_cast<double>(r.critical_path.length_tasks));
  reg.gauge("obs.analytics.parallel_efficiency").set(r.utilization.parallel_efficiency);
  reg.gauge("obs.analytics.jain_fairness").set(r.utilization.jain_fairness);
  reg.gauge("obs.analytics.overlap_fraction").set(r.overlap.overlap_fraction);
  reg.gauge("obs.analytics.window_seconds").set(r.utilization.window_seconds);
}

std::string analytics_json(const AnalyticsReport& r, const std::string& indent) {
  std::ostringstream os;
  os << std::setprecision(9);
  const std::string in2 = indent + "  ";
  os << "{\n" << in2 << "\"critical_path\": {\"seconds\": "
     << r.critical_path.length_seconds
     << ", \"tasks\": " << r.critical_path.length_tasks
     << ", \"span_seconds\": " << r.critical_path.span_seconds
     << ", \"dominance\": " << r.critical_path.dominance
     << ", \"process\": \"" << json_escape(r.critical_path.process) << "\",\n"
     << in2 << "  \"op_seconds\": {";
  bool first = true;
  for (const auto& [op, secs] : r.critical_path.op_seconds) {
    os << (first ? "" : ", ") << "\"" << json_escape(op) << "\": " << secs;
    first = false;
  }
  os << "}},\n";
  os << in2 << "\"utilization\": {\"window_seconds\": " << r.utilization.window_seconds
     << ", \"parallel_efficiency\": " << r.utilization.parallel_efficiency
     << ", \"jain_fairness\": " << r.utilization.jain_fairness
     << ", \"workers\": [";
  for (std::size_t i = 0; i < r.utilization.workers.size(); ++i) {
    const WorkerUtilization& w = r.utilization.workers[i];
    os << (i ? "," : "") << "\n" << in2 << "  {\"process\": \""
       << json_escape(w.process) << "\", \"worker\": " << w.worker
       << ", \"tasks\": " << w.tasks << ", \"busy_seconds\": " << w.busy_seconds
       << ", \"queue_wait_seconds\": " << w.queue_wait_seconds
       << ", \"utilization\": " << w.utilization << "}";
  }
  os << (r.utilization.workers.empty() ? "]" : "\n" + in2 + "]") << "},\n";
  os << in2 << "\"overlap\": {\"comm_events\": " << r.overlap.comm_events
     << ", \"overlapped_events\": " << r.overlap.overlapped_events
     << ", \"bytes_total\": " << r.overlap.bytes_total
     << ", \"bytes_overlapped\": " << r.overlap.bytes_overlapped
     << ", \"fraction\": " << r.overlap.overlap_fraction << "}\n"
     << indent << "}";
  return os.str();
}

void write_gantt_trace(const ExecutionHistory& h, const std::string& path) {
  std::ofstream os(path);
  GSX_REQUIRE(os.good(), "write_gantt_trace: cannot open " + path);
  os << std::fixed << std::setprecision(3);

  // Stable pid per process name; tid = worker lane (external lane last).
  std::map<std::string, int> pids;
  for (const GraphExec& g : h.graphs)
    pids.emplace(g.process, static_cast<int>(pids.size()) + 1);
  for (const CommEvent& c : h.comm)
    pids.emplace(c.process, static_cast<int>(pids.size()) + 1);

  os << "[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (const auto& [proc, pid] : pids) {
    sep();
    os << R"(  {"name": "process_name", "ph": "M", "pid": )" << pid
       << R"(, "args": {"name": ")" << json_escape(proc) << "\"}}";
  }
  const double t0 = h.t_min;
  for (const GraphExec& g : h.graphs) {
    const int pid = pids[g.process];
    for (const auto& [id, t] : g.tasks) {
      sep();
      os << R"(  {"name": ")" << json_escape(t.op) << R"(", "cat": "task", "ph": "X", "ts": )"
         << (t.start - t0) * 1e6 << R"(, "dur": )" << t.duration() * 1e6
         << R"(, "pid": )" << pid << R"(, "tid": )" << t.worker
         << R"(, "args": {"task": )" << t.task << R"(, "gen": )" << g.generation
         << R"(, "deps": )" << t.dep_count << "}}";
    }
  }
  // Tile wire activity as instant events on a dedicated lane per process.
  for (const CommEvent& c : h.comm) {
    sep();
    os << R"(  {"name": ")" << (c.recv ? "tile_recv" : "tile_send")
       << R"(", "cat": "wire", "ph": "i", "s": "t", "ts": )" << (c.t - t0) * 1e6
       << R"(, "pid": )" << pids[c.process]
       << R"(, "tid": 300, "args": {"bytes": )" << c.bytes << "}}";
  }
  os << "\n]\n";
  GSX_REQUIRE(os.good(), "write_gantt_trace: write failed for " + path);
}

}  // namespace gsx::obs
