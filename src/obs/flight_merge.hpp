// Cross-process flight-dump correlation: merge per-process JSONL dumps into
// one causally-ordered timeline.
//
// Each dump (FlightRecorder::snapshot_jsonl) opens with a header that pairs
// a CLOCK_REALTIME wall-clock anchor with a monotonic anchor sampled at the
// same instant, so every event's monotonic timestamp converts to wall time:
// wall = wall_anchor + (t - mono_anchor). That alone aligns processes to
// the resolution of their wall clocks; on top of it, heartbeat
// request/response pairs (HeartbeatSend/HeartbeatAck on the replica,
// HeartbeatRecv on the router) give an NTP-style per-replica offset
// estimate — offset = recv - (send + ack)/2, the router-clock error of the
// replica's midpoint — which the merge applies before ordering.
//
// This is the post-mortem engine behind the gsx_obs tool and the router's
// flight_collect verb: gather dumps, merge, group by trace id, and read one
// fleet-wide story of a failover or a NumericalError.
//
// Deliberately obs-local: dumps are parsed with a small flat-JSON scanner
// (keys are fixed by flight.cpp's writer) instead of the serving layer's
// JsonValue, keeping obs free of a serve dependency.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gsx::obs {

/// One event on the merged fleet timeline.
struct MergedEvent {
  double t_wall = 0.0;   ///< wall-clock seconds, offset-corrected
  double t = 0.0;        ///< original monotonic timestamp from the dump
  std::string process;   ///< dump header's process name
  std::uint64_t pid = 0;
  std::string kind;
  std::uint64_t thread = 0;
  std::uint64_t request = 0;
  std::uint64_t trace = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  double v = 0.0;
};

/// One parsed per-process dump.
struct FlightDump {
  std::string process = "gsx";
  std::uint64_t pid = 0;
  double wall_anchor = 0.0;
  double mono_anchor = 0.0;
  bool has_header = false;   ///< false: events stay on their monotonic clock
  std::vector<MergedEvent> events;  ///< t_wall = anchor-converted, no offset
};

/// The merged fleet timeline.
struct MergeResult {
  std::vector<MergedEvent> timeline;  ///< wall-ordered, exact dups removed
  /// Estimated clock offset per process (seconds to ADD to a process's wall
  /// times to land on the reference clock). The reference process — the one
  /// handling heartbeats, i.e. the router — and processes with no heartbeat
  /// pairing get 0.
  std::map<std::string, double> clock_offsets;
  /// Trace id -> indices into `timeline`, in timeline order.
  std::map<std::uint64_t, std::vector<std::size_t>> traces;
};

/// Parse one dump (JSONL text). Unparseable lines are skipped; a missing
/// header leaves has_header false and t_wall = t.
[[nodiscard]] FlightDump parse_flight_dump(const std::string& jsonl);

/// Merge parsed dumps: estimate per-process offsets from heartbeat pairs,
/// correct, order, dedupe (collecting from an in-process fleet yields the
/// same snapshot several times), and group by trace id.
[[nodiscard]] MergeResult merge_flight_dumps(const std::vector<FlightDump>& dumps);

}  // namespace gsx::obs
