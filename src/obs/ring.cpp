#include "obs/ring.hpp"

namespace gsx::obs {

std::string_view event_kind_name(EventKind k) noexcept {
  switch (k) {
    case EventKind::RequestAdmit: return "request_admit";
    case EventKind::RequestDispatch: return "request_dispatch";
    case EventKind::RequestComplete: return "request_complete";
    case EventKind::RequestReject: return "request_reject";
    case EventKind::TaskReady: return "task_ready";
    case EventKind::TaskRun: return "task_run";
    case EventKind::TaskDone: return "task_done";
    case EventKind::TileDemotion: return "tile_demotion";
    case EventKind::CacheHit: return "cache_hit";
    case EventKind::CacheMiss: return "cache_miss";
    case EventKind::CacheEvict: return "cache_evict";
    case EventKind::NumericalSentinel: return "numerical_sentinel";
    case EventKind::SolveBegin: return "solve_begin";
    case EventKind::SolveEnd: return "solve_end";
    case EventKind::RouterForward: return "router_forward";
    case EventKind::SpanRouterQueue: return "span_router_queue";
    case EventKind::SpanRouterForward: return "span_router_forward";
    case EventKind::SpanRouterRetry: return "span_router_retry";
    case EventKind::SpanReplicaQueue: return "span_replica_queue";
    case EventKind::SpanReplicaAssemble: return "span_replica_assemble";
    case EventKind::SpanReplicaSolve: return "span_replica_solve";
    case EventKind::HeartbeatSend: return "heartbeat_send";
    case EventKind::HeartbeatAck: return "heartbeat_ack";
    case EventKind::HeartbeatRecv: return "heartbeat_recv";
    case EventKind::TileSend: return "tile_send";
    case EventKind::TileRecv: return "tile_recv";
    case EventKind::SpillOut: return "spill_out";
    case EventKind::SpillIn: return "spill_in";
    case EventKind::TaskStart: return "task_start";
    case EventKind::TaskEnd: return "task_end";
    case EventKind::TaskDepEdge: return "task_dep";
  }
  return "unknown";
}

void EventRing::record(const Event& e) noexcept {
  const std::uint64_t pos = recorded_.load(std::memory_order_relaxed);
  Slot& s = slots_[pos & (kRingCapacity - 1)];
  const std::uint64_t seq = s.seq.load(std::memory_order_relaxed);
  s.seq.store(seq + 1, std::memory_order_release);  // odd: write in progress
  s.t.store(e.t, std::memory_order_relaxed);
  s.request.store(e.request, std::memory_order_relaxed);
  s.trace.store(e.trace, std::memory_order_relaxed);
  s.a.store(e.a, std::memory_order_relaxed);
  s.b.store(e.b, std::memory_order_relaxed);
  s.v.store(e.v, std::memory_order_relaxed);
  s.kind_thread.store((static_cast<std::uint32_t>(e.kind) << 16) | e.thread,
                      std::memory_order_relaxed);
  s.seq.store(seq + 2, std::memory_order_release);  // even: stable
  recorded_.store(pos + 1, std::memory_order_release);
}

bool EventRing::read_slot(std::size_t i, Event& out) const noexcept {
  const Slot& s = slots_[i];
  const std::uint64_t before = s.seq.load(std::memory_order_acquire);
  if (before == 0 || (before & 1) != 0) return false;  // empty or mid-write
  out.t = s.t.load(std::memory_order_relaxed);
  out.request = s.request.load(std::memory_order_relaxed);
  out.trace = s.trace.load(std::memory_order_relaxed);
  out.a = s.a.load(std::memory_order_relaxed);
  out.b = s.b.load(std::memory_order_relaxed);
  out.v = s.v.load(std::memory_order_relaxed);
  const std::uint32_t kt = s.kind_thread.load(std::memory_order_relaxed);
  out.kind = static_cast<EventKind>(kt >> 16);
  out.thread = static_cast<std::uint16_t>(kt & 0xFFFF);
  std::atomic_thread_fence(std::memory_order_acquire);
  return s.seq.load(std::memory_order_relaxed) == before;  // false: torn
}

void EventRing::snapshot_into(std::vector<Event>& out) const {
  Event e;
  for (std::size_t i = 0; i < kRingCapacity; ++i)
    if (read_slot(i, e)) out.push_back(e);
}

}  // namespace gsx::obs
