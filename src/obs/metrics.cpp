#include "obs/metrics.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace gsx::obs {

namespace {
std::atomic<bool> g_enabled{false};
}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) noexcept { g_enabled.store(on, std::memory_order_relaxed); }

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  GSX_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
              "Histogram: bucket bounds must be ascending");
}

void Histogram::atomic_add_double(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void Histogram::observe(double v) noexcept {
  if (!enabled()) return;
  // Inclusive upper bounds (Prometheus "le" convention): v lands in the
  // first bucket whose bound is >= v.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  const std::uint64_t prev = count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, v);
  if (prev == 0) {
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
    return;
  }
  double cur = min_.load(std::memory_order_relaxed);
  while (v < cur && !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::count() const noexcept {
  return count_.load(std::memory_order_relaxed);
}
double Histogram::sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
double Histogram::min() const noexcept { return min_.load(std::memory_order_relaxed); }
double Histogram::max() const noexcept { return max_.load(std::memory_order_relaxed); }
double Histogram::mean() const noexcept {
  const std::uint64_t c = count();
  return c > 0 ? sum() / static_cast<double>(c) : 0.0;
}

double Histogram::percentile(double p) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const std::uint64_t c = buckets_[b].load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (static_cast<double>(cum + c) >= target) {
      // The +inf overflow bucket has no finite upper bound to interpolate
      // toward: report the observed max instead of a bucket-width guess.
      if (b == bounds_.size()) return max();
      // Interpolate within [lo, hi); clamp the open edges to observed range.
      const double lo = (b == 0) ? min() : bounds_[b - 1];
      const double hi = bounds_[b];
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(c);
      const double v = lo + std::clamp(frac, 0.0, 1.0) * (hi - lo);
      return std::clamp(v, min(), max());
    }
    cum += c;
  }
  return max();
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::duration_bounds() {
  // 1 us .. 100 s, one bucket per factor sqrt(10): enough resolution for a
  // p95 on kernel and phase durations without per-sample storage.
  std::vector<double> b;
  for (double v = 1e-6; v < 2e2; v *= 3.1622776601683795) b.push_back(v);
  return b;
}

// ---------------------------------------------------------------------------
// Registry

struct Registry::Impl {
  mutable std::mutex mutex;
  // std::map: stable report ordering and node-stable references.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry& Registry::instance() {
  static Registry r;
  return r;
}

Registry::Impl& Registry::impl() const {
  static Impl impl;
  return impl;
}

Counter& Registry::counter(const std::string& name) {
  Impl& im = impl();
  std::lock_guard lk(im.mutex);
  auto& slot = im.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  Impl& im = impl();
  std::lock_guard lk(im.mutex);
  auto& slot = im.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> upper_bounds) {
  Impl& im = impl();
  std::lock_guard lk(im.mutex);
  auto& slot = im.histograms[name];
  if (!slot) {
    if (upper_bounds.empty()) upper_bounds = Histogram::duration_bounds();
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return *slot;
}

void Registry::reset() {
  Impl& im = impl();
  std::lock_guard lk(im.mutex);
  for (auto& [_, c] : im.counters) c->reset();
  for (auto& [_, g] : im.gauges) g->reset();
  for (auto& [_, h] : im.histograms) h->reset();
}

std::vector<MetricSample> Registry::samples() const {
  Impl& im = impl();
  std::lock_guard lk(im.mutex);
  std::vector<MetricSample> out;
  out.reserve(im.counters.size() + im.gauges.size() + im.histograms.size());
  for (const auto& [name, c] : im.counters) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::Counter;
    s.value = static_cast<double>(c->value());
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : im.gauges) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::Gauge;
    s.value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : im.histograms) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::Histogram;
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
    s.p50 = h->percentile(0.50);
    s.p95 = h->percentile(0.95);
    s.p99 = h->percentile(0.99);
    s.p999 = h->percentile(0.999);
    s.bucket_bounds = h->upper_bounds();
    s.bucket_counts = h->bucket_counts();
    out.push_back(std::move(s));
  }
  return out;
}

// ---------------------------------------------------------------------------
// ScopedTimer

ScopedTimer::ScopedTimer(const char* histogram_name)
    : name_(histogram_name), start_(enabled() ? now_seconds() : -1.0) {}

ScopedTimer::~ScopedTimer() {
  if (start_ < 0.0 || !enabled()) return;
  Registry::instance().histogram(name_).observe(now_seconds() - start_);
}

}  // namespace gsx::obs
