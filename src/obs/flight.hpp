// Process-wide flight recorder: merges every thread's event ring into a
// time-ordered stream and ships it as JSONL — on demand, on a serving
// failure (NumericalError), or from a fatal-signal handler.
//
// Unlike the metrics/tracing layers (opt-in via obs::set_enabled), the
// flight recorder is ALWAYS ON when compiled in: its job is to explain the
// failure nobody anticipated, so it cannot depend on someone having turned
// it on first. The record path costs a handful of relaxed atomic stores
// into a thread-local ring (see ring.hpp); builds that cannot afford even
// that compile it out with -DGSX_TELEMETRY=OFF.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/ring.hpp"

namespace gsx::obs {

/// Record one event into the calling thread's ring (registers the ring on
/// first use). Timestamp is taken here; the calling thread's ambient trace
/// id (FlightTraceScope) is stamped on the event. Prefer the GSX_FLIGHT
/// macro at call sites so GSX_TELEMETRY=OFF builds drop the site entirely.
void flight_record(EventKind kind, std::uint64_t request, std::uint64_t a,
                   std::uint64_t b, double v) noexcept;

// ---------------------------------------------------------------------------
// Distributed tracing primitives.
//
// The trace id is ambient per-thread state (unlike RequestContext, which is
// threaded explicitly): GSX_FLIGHT sites are scattered across layers whose
// signatures must not grow a trace parameter, and the id only decorates
// events — it never changes behavior. A scope installs the id for the
// duration of one request's work on the current thread.

/// Set the calling thread's ambient trace id (0 clears). Returns the
/// previous value so scopes can nest.
std::uint64_t set_current_trace(std::uint64_t trace) noexcept;

/// The calling thread's ambient trace id (0 = untraced).
[[nodiscard]] std::uint64_t current_trace() noexcept;

/// RAII trace scope: events recorded by this thread inside the scope carry
/// `trace`; the previous ambient id is restored on exit.
class FlightTraceScope {
 public:
  explicit FlightTraceScope(std::uint64_t trace) noexcept
      : prev_(set_current_trace(trace)) {}
  ~FlightTraceScope() { set_current_trace(prev_); }
  FlightTraceScope(const FlightTraceScope&) = delete;
  FlightTraceScope& operator=(const FlightTraceScope&) = delete;

 private:
  std::uint64_t prev_;
};

/// Mint a span id unique across the fleet: low 48 bits are a process-local
/// counter, the top 16 bits fold in the pid so router- and replica-minted
/// ids never collide in a merged timeline.
[[nodiscard]] std::uint64_t mint_span_id() noexcept;

/// The process-wide recorder.
class FlightRecorder {
 public:
  static FlightRecorder& instance();

  /// Merge all rings, time-ordered. Never blocks writers.
  [[nodiscard]] std::vector<Event> snapshot() const;

  /// Snapshot serialized as JSONL. The first line is a dump header carrying
  /// the alignment datum for cross-process merges — wall clock
  /// (CLOCK_REALTIME) and monotonic clock sampled at the same instant, plus
  /// process name and pid:
  ///   {"t":1.25,"kind":"dump_header","process":"r0","pid":4242,
  ///    "wall_anchor":1754700000.5,"mono_anchor":1.25}
  /// followed by one event object per line:
  ///   {"t":1.25,"kind":"task_run","thread":0,"request":7,"trace":9,...}
  [[nodiscard]] std::string snapshot_jsonl() const;

  /// Process name stamped on dump headers (defaults to "gsx"). Set once at
  /// daemon startup (e.g. the replica's --name).
  void set_process_name(std::string name);
  [[nodiscard]] std::string process_name() const;

  /// Write snapshot_jsonl() to `path` (truncates). Returns false on I/O
  /// failure. This is the NumericalError dump path: the serving engine calls
  /// it with the configured dump file before failing the request.
  bool dump(const std::string& path) const;

  /// Where failure dumps go; empty disables them. Thread-safe.
  void set_dump_path(std::string path);
  [[nodiscard]] std::string dump_path() const;

  /// Dump to the configured path (no-op when unset). Returns the path
  /// written, or empty. Called on NumericalError in the serving engine.
  std::string dump_on_failure() const;

  /// Async-signal-safe dump: formats events into a stack buffer and
  /// write()s them to `fd`. No allocation, no locks, no stdio — callable
  /// from a SIGSEGV/SIGABRT handler. Events may be slightly out of order
  /// (no sort without allocation); each line carries its timestamp.
  void dump_fd_signal_safe(int fd) const noexcept;

  /// Install SIGSEGV/SIGBUS/SIGABRT/SIGFPE handlers that dump the flight
  /// recorder to `fd` (typically an opened crash file or stderr) and then
  /// re-raise with the default disposition. Idempotent.
  void install_fatal_handlers(int fd) noexcept;

  /// Total events recorded process-wide (monotonic, includes overwritten).
  [[nodiscard]] std::uint64_t total_recorded() const noexcept;

  // Internal: called by flight_record on a thread's first event.
  EventRing* acquire_ring(std::uint16_t* index_out) noexcept;
  void release_ring(EventRing* ring) noexcept;

 private:
  FlightRecorder() = default;
};

/// Render one event as a single JSONL line (no trailing newline).
[[nodiscard]] std::string event_jsonl(const Event& e);

}  // namespace gsx::obs
