// Process-wide flight recorder: merges every thread's event ring into a
// time-ordered stream and ships it as JSONL — on demand, on a serving
// failure (NumericalError), or from a fatal-signal handler.
//
// Unlike the metrics/tracing layers (opt-in via obs::set_enabled), the
// flight recorder is ALWAYS ON when compiled in: its job is to explain the
// failure nobody anticipated, so it cannot depend on someone having turned
// it on first. The record path costs a handful of relaxed atomic stores
// into a thread-local ring (see ring.hpp); builds that cannot afford even
// that compile it out with -DGSX_TELEMETRY=OFF.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/ring.hpp"

namespace gsx::obs {

/// Record one event into the calling thread's ring (registers the ring on
/// first use). Timestamp is taken here. Prefer the GSX_FLIGHT macro at call
/// sites so GSX_TELEMETRY=OFF builds drop the site entirely.
void flight_record(EventKind kind, std::uint64_t request, std::uint64_t a,
                   std::uint64_t b, double v) noexcept;

/// The process-wide recorder.
class FlightRecorder {
 public:
  static FlightRecorder& instance();

  /// Merge all rings, time-ordered. Never blocks writers.
  [[nodiscard]] std::vector<Event> snapshot() const;

  /// Snapshot serialized as JSONL, one event object per line:
  ///   {"t":1.25,"kind":"task_run","request":7,"a":3,"b":0,"v":0}
  [[nodiscard]] std::string snapshot_jsonl() const;

  /// Write snapshot_jsonl() to `path` (truncates). Returns false on I/O
  /// failure. This is the NumericalError dump path: the serving engine calls
  /// it with the configured dump file before failing the request.
  bool dump(const std::string& path) const;

  /// Where failure dumps go; empty disables them. Thread-safe.
  void set_dump_path(std::string path);
  [[nodiscard]] std::string dump_path() const;

  /// Dump to the configured path (no-op when unset). Returns the path
  /// written, or empty. Called on NumericalError in the serving engine.
  std::string dump_on_failure() const;

  /// Async-signal-safe dump: formats events into a stack buffer and
  /// write()s them to `fd`. No allocation, no locks, no stdio — callable
  /// from a SIGSEGV/SIGABRT handler. Events may be slightly out of order
  /// (no sort without allocation); each line carries its timestamp.
  void dump_fd_signal_safe(int fd) const noexcept;

  /// Install SIGSEGV/SIGBUS/SIGABRT/SIGFPE handlers that dump the flight
  /// recorder to `fd` (typically an opened crash file or stderr) and then
  /// re-raise with the default disposition. Idempotent.
  void install_fatal_handlers(int fd) noexcept;

  /// Total events recorded process-wide (monotonic, includes overwritten).
  [[nodiscard]] std::uint64_t total_recorded() const noexcept;

  // Internal: called by flight_record on a thread's first event.
  EventRing* acquire_ring(std::uint16_t* index_out) noexcept;
  void release_ring(EventRing* ring) noexcept;

 private:
  FlightRecorder() = default;
};

/// Render one event as a single JSONL line (no trailing newline).
[[nodiscard]] std::string event_jsonl(const Event& e);

}  // namespace gsx::obs
