// Machine-readable profile reports.
//
// write_profile_json emits everything one run recorded — per-iteration
// per-precision flop counts, conversion counts, tile mixes and TLR rank
// histograms (the paper's Fig. 8 / Fig. 9 tables), pipeline phase timings,
// and every registry metric. write_flops_csv flattens the flop mix into a
// spreadsheet-friendly long format.
#pragma once

#include <string>

namespace gsx::obs {

/// Write the full profile report as JSON to `path`. Throws InvalidArgument
/// if the file cannot be written.
void write_profile_json(const std::string& path);

/// Write the per-iteration (kernel, precision) flop mix as CSV:
///   iteration,label,kernel,precision,calls,flops
/// followed by conversion rows:
///   iteration,label,convert,FROM->TO,count,elements
void write_flops_csv(const std::string& path);

/// Reset every observability store (metrics, flop ledger, trace spans,
/// iteration records) — call before a profiled run.
void reset_all();

}  // namespace gsx::obs
