// Execution analytics: turn flight-recorder history (TaskStart / TaskEnd /
// TaskDepEdge plus the tile-exchange events) into the three diagnostics that
// govern task-runtime scalability — the critical path of the executed DAG,
// per-worker / per-rank utilization, and comm-vs-compute overlap.
//
// The input is a merged fleet timeline (obs/flight_merge.hpp): either one
// process's dump or a flight_collect directory of a distributed run, with
// heartbeat-derived clock offsets already applied. Everything here is pure
// post-processing — no locks, no registry writes except the explicit
// export_analytics_metrics() hook — so the same code backs the offline
// gsx_obs subcommands and the in-process profile.json summary.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/flight_merge.hpp"
#include "obs/ring.hpp"

namespace gsx::obs {

/// Pack the leading identifier of a task name (chars before '(' — the op
/// kind: "potrf", "gemm", "recv", ...) into a u64, little-endian, at most 8
/// bytes. Self-describing in JSONL dumps: unpack_op_name inverts it.
[[nodiscard]] std::uint64_t pack_op_name(std::string_view name) noexcept;
[[nodiscard]] std::string unpack_op_name(std::uint64_t packed);

// Field layouts of the TaskStart/TaskEnd/TaskDepEdge `a` word (ring.hpp).
[[nodiscard]] constexpr std::uint64_t task_ident(std::uint64_t gen,
                                                 std::uint64_t worker,
                                                 std::uint64_t task) noexcept {
  return (gen & 0xFFFFu) << 48 | (worker & 0xFFu) << 40 | (task & 0xFFFFFFFFFFu);
}
[[nodiscard]] constexpr std::uint64_t dep_ident(std::uint64_t gen,
                                                std::uint64_t succ,
                                                std::uint64_t pred) noexcept {
  return (gen & 0xFFFFu) << 48 | (succ & 0xFFFFFFu) << 24 | (pred & 0xFFFFFFu);
}
/// Worker field value for externally-completed tasks (transport notify()).
inline constexpr std::uint64_t kExternalWorker = 0xFF;

/// One executed task reconstructed from its TaskStart/TaskEnd pair.
struct TaskExec {
  std::uint64_t task = 0;    ///< submission index within its graph
  std::uint64_t worker = 0;  ///< executing worker (kExternalWorker = external)
  std::string op;            ///< decoded op-kind prefix ("gemm", ...)
  double start = 0.0;        ///< wall seconds (offset-corrected)
  double end = 0.0;
  std::size_t dep_count = 0;           ///< recorded predecessor count
  std::vector<std::uint64_t> preds;    ///< predecessor task ids (same graph)
  [[nodiscard]] double duration() const noexcept { return end - start; }
};

/// One (process, graph-generation) DAG execution.
struct GraphExec {
  std::string process;
  std::uint64_t generation = 0;
  std::map<std::uint64_t, TaskExec> tasks;  ///< task id -> execution record
  std::size_t edges = 0;                    ///< TaskDepEdge events decoded
};

/// One communication point event (TileSend/TileRecv) on a process.
struct CommEvent {
  std::string process;
  double t = 0.0;            ///< wall seconds (offset-corrected)
  std::uint64_t bytes = 0;
  bool recv = false;
};

/// Everything analytics needs, decoded once from a merged timeline.
struct ExecutionHistory {
  std::vector<GraphExec> graphs;
  std::vector<CommEvent> comm;
  double t_min = 0.0;  ///< earliest task start across all graphs
  double t_max = 0.0;  ///< latest task end
};

/// Decode a merged timeline (clock offsets already applied by
/// merge_flight_dumps). Events other than the task/tile vocabulary are
/// ignored. TaskEnd without a matching TaskStart (external tasks) yields a
/// zero-duration task at the end timestamp.
[[nodiscard]] ExecutionHistory build_history(const std::vector<MergedEvent>& timeline);

/// Convenience: decode this process's own flight recorder snapshot (raw
/// Events, monotonic clock — fine for a single process).
[[nodiscard]] ExecutionHistory build_history(const std::vector<Event>& events,
                                             const std::string& process = "gsx");

/// Longest duration-weighted dependency chain through one executed DAG.
struct CriticalPathReport {
  std::string process;
  std::uint64_t generation = 0;
  double length_seconds = 0.0;        ///< sum of task durations on the path
  double span_seconds = 0.0;          ///< wall span first start -> last end
  std::size_t length_tasks = 0;
  std::vector<std::uint64_t> path;    ///< task ids, dependency order
  std::map<std::string, double> op_seconds;  ///< per-op-kind attribution
  /// Fraction of total recorded task seconds that sit on the path — how
  /// serialized the execution was (1.0 = a pure chain).
  double dominance = 0.0;
};

/// Critical path of one graph; with no edges recorded (ring wrap) the
/// heaviest single task is reported and `edges` stays 0 in the history.
[[nodiscard]] CriticalPathReport critical_path(const GraphExec& g);
/// The dominant critical path across every graph in the history (longest
/// length_seconds). Returns a default report for an empty history.
[[nodiscard]] CriticalPathReport critical_path(const ExecutionHistory& h);

/// Busy/idle accounting for one (process, worker) lane.
struct WorkerUtilization {
  std::string process;
  std::uint64_t worker = 0;
  std::size_t tasks = 0;
  double busy_seconds = 0.0;        ///< union of task intervals
  double queue_wait_seconds = 0.0;  ///< sum of (start - all-preds-done)
  double utilization = 0.0;         ///< busy / window
};

struct UtilizationReport {
  double window_seconds = 0.0;  ///< t_max - t_min over the whole history
  std::vector<WorkerUtilization> workers;  ///< external lanes excluded
  /// Jain's fairness index over per-worker busy seconds:
  /// (sum x)^2 / (n * sum x^2); 1.0 = perfectly balanced, 1/n = one hog.
  double jain_fairness = 0.0;
  double parallel_efficiency = 0.0;  ///< total busy / (window * lanes)
  /// Per-process rollup (rank imbalance for distributed runs).
  std::map<std::string, double> process_busy_seconds;
};

[[nodiscard]] UtilizationReport utilization(const ExecutionHistory& h);

/// Comm-vs-compute overlap: the fraction of tile wire events (and bytes)
/// whose timestamp lands inside a compute-busy interval of their process.
/// TileSend/TileRecv are point events, so this measures whether the
/// transport fires while workers are busy (overlapped) or while they sit
/// idle waiting on the wire (exposed communication).
struct OverlapReport {
  std::size_t comm_events = 0;
  std::size_t overlapped_events = 0;
  std::uint64_t bytes_total = 0;
  std::uint64_t bytes_overlapped = 0;
  double overlap_fraction = 0.0;  ///< overlapped_events / comm_events
};

[[nodiscard]] OverlapReport comm_overlap(const ExecutionHistory& h);

/// The full bundle the CLI surfaces.
struct AnalyticsReport {
  CriticalPathReport critical_path;
  UtilizationReport utilization;
  OverlapReport overlap;
};

[[nodiscard]] AnalyticsReport analyze(const ExecutionHistory& h);

/// Publish the headline numbers as obs.analytics.* gauges so a scrape (or
/// profile.json's metrics array) carries them alongside the raw counters.
void export_analytics_metrics(const AnalyticsReport& r);

/// Render the report as a JSON object (no trailing newline) — the
/// "analytics" block embedded in profile.json and bench JSON.
[[nodiscard]] std::string analytics_json(const AnalyticsReport& r,
                                         const std::string& indent = "  ");

/// Chrome-trace (about://tracing, Perfetto) export of the merged per-rank
/// timeline: one pid per process, one tid per worker lane, an "X" slice per
/// task plus instant events for tile sends/receives. Throws InvalidArgument
/// if the file cannot be written.
void write_gantt_trace(const ExecutionHistory& h, const std::string& path);

}  // namespace gsx::obs
