#include "obs/log.hpp"

#include <atomic>
#include <cmath>
#include <map>
#include <mutex>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace gsx::obs {

namespace {

/// Lowest level any module currently accepts — the fast-path gate. Kept in
/// sync with the global level and the module overrides under g_mutex.
std::atomic<unsigned char> g_gate{static_cast<unsigned char>(LogLevel::Off)};

std::mutex g_mutex;
LogLevel g_global = LogLevel::Off;
std::map<std::string, LogLevel> g_module_levels;
std::FILE* g_text = stderr;
std::FILE* g_json = nullptr;
std::uint64_t g_rate_limit = 0;  // messages per key per second; 0 = off
std::atomic<std::uint64_t> g_suppressed{0};

/// Rate-limiter state per (module, level) key.
struct RateWindow {
  std::int64_t window = -1;  ///< whole second since the obs epoch
  std::uint64_t count = 0;
};
std::map<std::string, RateWindow> g_windows;

void refresh_gate_locked() {
  LogLevel gate = g_global;
  for (const auto& [_, lvl] : g_module_levels)
    if (lvl < gate) gate = lvl;
  g_gate.store(static_cast<unsigned char>(gate), std::memory_order_relaxed);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string render_double(double v) {
  if (!std::isfinite(v)) {
    // JSON has no Infinity/NaN literals; stringify so the JSONL sink stays
    // parseable (the text sink prints the same token).
    return v > 0 ? "\"inf\"" : (v < 0 ? "\"-inf\"" : "\"nan\"");
  }
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

}  // namespace

std::optional<LogLevel> parse_log_level(std::string_view name) noexcept {
  for (LogLevel l : {LogLevel::Trace, LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                     LogLevel::Error, LogLevel::Off})
    if (name == log_level_name(l)) return l;
  return std::nullopt;
}

bool log_enabled(LogLevel level) noexcept {
  return static_cast<unsigned char>(level) >= g_gate.load(std::memory_order_relaxed);
}

void set_log_level(LogLevel level) noexcept {
  std::lock_guard lk(g_mutex);
  g_global = level;
  refresh_gate_locked();
}

LogLevel log_level() noexcept {
  std::lock_guard lk(g_mutex);
  return g_global;
}

void set_module_log_level(const std::string& module, LogLevel level) {
  std::lock_guard lk(g_mutex);
  g_module_levels[module] = level;
  refresh_gate_locked();
}

void clear_module_log_levels() {
  std::lock_guard lk(g_mutex);
  g_module_levels.clear();
  refresh_gate_locked();
}

LogField lf(std::string key, std::string value) {
  return {std::move(key), std::move(value), false};
}
LogField lf(std::string key, const char* value) {
  return {std::move(key), std::string(value), false};
}
LogField lf(std::string key, double value) {
  return {std::move(key), render_double(value), true};
}
LogField lf(std::string key, std::uint64_t value) {
  return {std::move(key), std::to_string(value), true};
}
LogField lf(std::string key, std::int64_t value) {
  return {std::move(key), std::to_string(value), true};
}
LogField lf(std::string key, int value) {
  return {std::move(key), std::to_string(value), true};
}
LogField lf(std::string key, bool value) {
  return {std::move(key), value ? "true" : "false", true};
}

void log(LogLevel level, const char* module, std::string_view message,
         std::initializer_list<LogField> fields) {
  if (level == LogLevel::Off || !log_enabled(level)) return;
  const double ts = now_seconds();

  std::lock_guard lk(g_mutex);
  // Per-module admission: an override replaces the global threshold.
  const auto it = g_module_levels.find(module);
  const LogLevel threshold = (it != g_module_levels.end()) ? it->second : g_global;
  if (level < threshold) return;

  if (g_rate_limit > 0) {
    const std::string key = std::string(module) + '/' +
                            std::string(log_level_name(level));
    RateWindow& w = g_windows[key];
    const auto second = static_cast<std::int64_t>(ts);
    if (w.window != second) {
      w.window = second;
      w.count = 0;
    }
    if (++w.count > g_rate_limit) {
      g_suppressed.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }

  if (g_text != nullptr) {
    std::string line;
    line.reserve(64 + message.size());
    char head[64];
    std::snprintf(head, sizeof(head), "[%12.6f] %-5s %s: ", ts,
                  std::string(log_level_name(level)).c_str(), module);
    line += head;
    line += message;
    for (const LogField& f : fields) {
      line += ' ';
      line += f.key;
      line += '=';
      line += f.value;
    }
    line += '\n';
    std::fputs(line.c_str(), g_text);
  }

  if (g_json != nullptr) {
    std::string line;
    line.reserve(96 + message.size());
    line += "{\"ts\": ";
    line += render_double(ts);
    line += ", \"level\": \"";
    line += log_level_name(level);
    line += "\", \"module\": \"";
    line += json_escape(module);
    line += "\", \"msg\": \"";
    line += json_escape(message);
    line += '"';
    for (const LogField& f : fields) {
      line += ", \"";
      line += json_escape(f.key);
      line += "\": ";
      if (f.numeric) {
        line += f.value;
      } else {
        line += '"';
        line += json_escape(f.value);
        line += '"';
      }
    }
    line += "}\n";
    std::fputs(line.c_str(), g_json);
  }
}

void set_log_text_stream(std::FILE* stream) noexcept {
  std::lock_guard lk(g_mutex);
  g_text = stream;
}

void open_log_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  GSX_REQUIRE(f != nullptr, "open_log_json: cannot open " + path);
  std::lock_guard lk(g_mutex);
  if (g_json != nullptr) std::fclose(g_json);
  g_json = f;
}

void close_log_json() {
  std::lock_guard lk(g_mutex);
  if (g_json != nullptr) {
    std::fclose(g_json);
    g_json = nullptr;
  }
}

void set_log_rate_limit(std::uint64_t max_per_second) noexcept {
  std::lock_guard lk(g_mutex);
  g_rate_limit = max_per_second;
}

std::uint64_t log_suppressed_count() noexcept {
  return g_suppressed.load(std::memory_order_relaxed);
}

void reset_log() {
  std::lock_guard lk(g_mutex);
  g_global = LogLevel::Off;
  g_module_levels.clear();
  g_text = stderr;
  if (g_json != nullptr) {
    std::fclose(g_json);
    g_json = nullptr;
  }
  g_rate_limit = 0;
  g_windows.clear();
  g_suppressed.store(0, std::memory_order_relaxed);
  refresh_gate_locked();
}

}  // namespace gsx::obs
