// End-to-end pipeline tracing: phase spans plus per-task kernel events.
//
// The runtime's TaskGraph traces individual kernel tasks relative to one
// run(); this store stitches those runs, the surrounding pipeline phases
// (assembly -> precision policy -> compression -> factorize -> solve ->
// krige) and any user spans onto a single process-wide clock, so one Chrome
// trace covers the full MLE / prediction pipeline. Kernels attach metadata
// (precision, rank, flops) to the task that is currently executing them via
// a thread-local annotation slot drained by the TaskGraph worker loop.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/precision.hpp"

namespace gsx::obs {

/// Seconds since the process-wide observability epoch (steady clock).
[[nodiscard]] double now_seconds() noexcept;

/// One completed span on the shared clock.
struct Span {
  std::string name;
  std::string category;  ///< "phase" for pipeline stages, "task" for kernels
  std::uint32_t tid = 0;  ///< worker id for tasks; kPipelineTid for phases
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  std::string args;  ///< pre-rendered JSON fields ("\"k\": v, ...") or empty
};

/// Chrome-trace row that pipeline phases render on (kept clear of worker
/// ids, which start at 0).
inline constexpr std::uint32_t kPipelineTid = 999;

/// Append a completed span (thread-safe; no-op when disabled).
void record_span(Span s);

/// All spans recorded since the last reset_trace(), in recording order.
[[nodiscard]] std::vector<Span> trace_spans();

void reset_trace();

/// RAII pipeline-phase span ("phase" category, pipeline row).
class ScopedPhase {
 public:
  explicit ScopedPhase(const char* name);
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;
  ~ScopedPhase();

 private:
  const char* name_;
  double start_ = -1.0;  ///< < 0: disabled at entry, destructor no-ops
};

/// Trace context propagated from the serving layer into solver entry points
/// (an explicit argument, never ambient state), so spans and flight-recorder
/// events deep in cholesky/ carry the originating request id end-to-end.
struct RequestContext {
  std::uint64_t request_id = 0;  ///< serve::mint_request_id(); 0 = no request
};

// ---------------------------------------------------------------------------
// Per-task kernel annotations.

/// Metadata a kernel attaches to the task currently executing it.
struct TaskAnnotation {
  Precision precision = Precision::FP64;
  std::int64_t rank = -1;  ///< low-rank output rank; -1 = dense / n.a.
  std::uint64_t flops = 0;
};

/// Set the calling thread's annotation slot (overwrites; no-op if disabled).
void annotate_task(Precision p, std::int64_t rank, std::uint64_t flops) noexcept;

/// Drain the calling thread's annotation slot (empty after the call).
[[nodiscard]] std::optional<TaskAnnotation> take_task_annotation() noexcept;

/// Render an annotation as Chrome-trace "args" fields.
[[nodiscard]] std::string annotation_args(const TaskAnnotation& a);

}  // namespace gsx::obs
