// Structured, leveled logging for the numerical-health observability layer.
//
// Like the metrics registry, logging is opt-in and its disabled cost in a
// hot path is a single predictable branch: log_enabled() is one relaxed
// atomic load against the lowest level any sink currently wants. The level
// defaults to Off, so a library user who never touches the logger pays
// nothing and sees nothing.
//
// A passing message is rendered to two sinks: a human-readable text stream
// (default stderr) and, when opened, a JSONL file (one JSON object per
// line, machine-parseable by the same tooling that reads the profile
// reports). Messages carry structured fields — typed key/value pairs that
// render as `key=value` in text and as JSON members in the JSONL sink.
//
// Per-module levels let one subsystem (say "cholesky") log at Debug while
// the rest stays at Warn. Rate limiting caps the per-(module, level)
// message rate so a pathological MLE run cannot flood a sink; suppressed
// messages are counted, never silently lost.
#pragma once

#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>

namespace gsx::obs {

enum class LogLevel : unsigned char {
  Trace = 0,
  Debug = 1,
  Info = 2,
  Warn = 3,
  Error = 4,
  Off = 5,
};

[[nodiscard]] constexpr std::string_view log_level_name(LogLevel l) noexcept {
  switch (l) {
    case LogLevel::Trace: return "trace";
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}

/// Parse "trace"/"debug"/"info"/"warn"/"error"/"off" (case-sensitive).
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view name) noexcept;

/// Fast admission check: one relaxed atomic load and a compare. True when
/// *some* module would accept a message at `level` (the per-module decision
/// happens on the slow path inside log()).
[[nodiscard]] bool log_enabled(LogLevel level) noexcept;

/// Global threshold: messages below `level` are dropped (default Off).
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Override the threshold for one module name (exact match against the
/// `module` argument of log()). Overrides may raise or lower the global
/// threshold for that module.
void set_module_log_level(const std::string& module, LogLevel level);
void clear_module_log_levels();

/// One structured field. Build with the lf() helpers; numbers render
/// unquoted in the JSONL sink.
struct LogField {
  std::string key;
  std::string value;       ///< pre-rendered
  bool numeric = false;    ///< JSONL: emit unquoted
};

[[nodiscard]] LogField lf(std::string key, std::string value);
[[nodiscard]] LogField lf(std::string key, const char* value);
[[nodiscard]] LogField lf(std::string key, double value);
[[nodiscard]] LogField lf(std::string key, std::uint64_t value);
[[nodiscard]] LogField lf(std::string key, std::int64_t value);
[[nodiscard]] LogField lf(std::string key, int value);
[[nodiscard]] LogField lf(std::string key, bool value);

/// Emit one message. Callers building expensive fields should guard with
/// log_enabled(level) first; log() re-checks admission (module override,
/// rate limit) before touching a sink. Thread-safe.
void log(LogLevel level, const char* module, std::string_view message,
         std::initializer_list<LogField> fields = {});

// Convenience wrappers.
inline void log_debug(const char* module, std::string_view msg,
                      std::initializer_list<LogField> fields = {}) {
  if (log_enabled(LogLevel::Debug)) log(LogLevel::Debug, module, msg, fields);
}
inline void log_info(const char* module, std::string_view msg,
                     std::initializer_list<LogField> fields = {}) {
  if (log_enabled(LogLevel::Info)) log(LogLevel::Info, module, msg, fields);
}
inline void log_warn(const char* module, std::string_view msg,
                     std::initializer_list<LogField> fields = {}) {
  if (log_enabled(LogLevel::Warn)) log(LogLevel::Warn, module, msg, fields);
}
inline void log_error(const char* module, std::string_view msg,
                      std::initializer_list<LogField> fields = {}) {
  if (log_enabled(LogLevel::Error)) log(LogLevel::Error, module, msg, fields);
}

/// Text sink (default stderr). nullptr silences the text sink; the stream
/// is borrowed, never closed.
void set_log_text_stream(std::FILE* stream) noexcept;

/// Open (truncate) a JSONL sink at `path`. Throws InvalidArgument when the
/// file cannot be created. Closes any previously open JSONL sink.
void open_log_json(const std::string& path);
void close_log_json();

/// Cap messages per (module, level) key per second; 0 = unlimited
/// (default 0). Suppressed messages increment log_suppressed_count().
void set_log_rate_limit(std::uint64_t max_per_second) noexcept;
[[nodiscard]] std::uint64_t log_suppressed_count() noexcept;

/// Restore defaults: level Off, no module overrides, text sink stderr,
/// JSONL closed, rate limit off, suppressed count zero. For tests and CLI
/// teardown.
void reset_log();

}  // namespace gsx::obs
