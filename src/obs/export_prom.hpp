// Prometheus text-format exposition (version 0.0.4) of the metrics registry.
//
// Every registry instrument maps to a Prometheus family: counters and gauges
// become single samples, histograms become the conventional
// `_bucket{le="..."}` cumulative series plus `_sum` and `_count`. Instrument
// names are sanitized (dots to underscores) and prefixed "gsx_", so
// "serve.predict.seconds" scrapes as `gsx_serve_predict_seconds_bucket{...}`.
// The renderer is what both the gsx_serve "metrics" verb and the
// --metrics-port HTTP scrape listener serve.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace gsx::obs {

/// Prometheus-legal metric name: "gsx_" + name with every character outside
/// [a-zA-Z0-9_:] replaced by '_'.
[[nodiscard]] std::string prometheus_name(const std::string& name);

/// Render one sample as its exposition lines (with # TYPE header).
[[nodiscard]] std::string prometheus_render(const MetricSample& sample);

/// Render the whole registry. Stable order (registry iteration order).
[[nodiscard]] std::string render_prometheus();

/// The scrape Content-Type for this format.
inline constexpr const char* kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

}  // namespace gsx::obs
