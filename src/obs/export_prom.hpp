// Prometheus text-format exposition (version 0.0.4) of the metrics registry.
//
// Every registry instrument maps to a Prometheus family: counters and gauges
// become single samples, histograms become the conventional
// `_bucket{le="..."}` cumulative series plus `_sum` and `_count`. Instrument
// names are sanitized (dots to underscores) and prefixed "gsx_", so
// "serve.predict.seconds" scrapes as `gsx_serve_predict_seconds_bucket{...}`.
// The renderer is what both the gsx_serve "metrics" verb and the
// --metrics-port HTTP scrape listener serve.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace gsx::obs {

/// Prometheus-legal metric name: "gsx_" + name with every character outside
/// [a-zA-Z0-9_:] replaced by '_'.
[[nodiscard]] std::string prometheus_name(const std::string& name);

/// Render one sample as its exposition lines (with # TYPE header).
[[nodiscard]] std::string prometheus_render(const MetricSample& sample);

/// Render the whole registry. Stable order (registry iteration order).
[[nodiscard]] std::string render_prometheus();

// ---------------------------------------------------------------------------
// Federation: rewriting and merging exposition text from several processes
// into one scrape (the router's fleet_metrics verb).

/// Inject `key="value"` into every sample line of `exposition` (comment
/// lines pass through). A series that already has labels gains one more;
/// a bare series gains a label set. `value` must not contain '"' or '\\'.
[[nodiscard]] std::string prometheus_with_label(const std::string& exposition,
                                                const std::string& key,
                                                const std::string& value);

/// Concatenate expositions, keeping only the first "# TYPE" header per
/// family so the union stays a valid single exposition.
[[nodiscard]] std::string prometheus_merge(const std::vector<std::string>& parts);

/// Estimate quantile `q` (0..1) of histogram `family` (already-sanitized
/// name, without the "_bucket" suffix) from exposition text: the smallest
/// bucket bound whose cumulative count covers q of the total. Returns the
/// largest finite bound when q falls in the +Inf overflow bucket, and NaN
/// when the family is absent or empty. Label sets are aggregated.
[[nodiscard]] double prometheus_histogram_quantile(const std::string& exposition,
                                                   const std::string& family,
                                                   double q);

/// The scrape Content-Type for this format.
inline constexpr const char* kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

}  // namespace gsx::obs
