// Process-wide metrics registry: named counters, gauges and histograms plus
// scoped RAII timers.
//
// Observability is opt-in: every recording call first checks a single
// process-wide atomic flag (obs::enabled(), relaxed load), so the cost of a
// disabled metric in a hot kernel is one predictable branch. Instruments are
// created lazily by name and live for the process lifetime; references
// returned by the registry remain valid across reset() (reset clears values,
// not identities), so hot paths may cache them.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace gsx::obs {

/// Global recording switch. Off by default: all record paths no-op.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written scalar (e.g. a footprint in bytes, a tuned band size).
class Gauge {
 public:
  void set(double v) noexcept {
    if (enabled()) value_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with atomic counts; observe() is lock-free.
/// Buckets are defined by ascending inclusive upper bounds (Prometheus "le"
/// convention); an implicit +inf bucket catches the tail. Percentiles are estimated by linear interpolation
/// within the containing bucket (exact min/max are tracked separately).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double sum() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double mean() const noexcept;
  /// p in [0, 1]; returns 0 for an empty histogram.
  [[nodiscard]] double percentile(double p) const noexcept;

  [[nodiscard]] const std::vector<double>& upper_bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket counts (size = upper_bounds().size() + 1, last = overflow).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

  void reset() noexcept;

  /// Default bounds for second-scale durations: 1 us .. 100 s, log-spaced.
  static std::vector<double> duration_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};

  void atomic_add_double(std::atomic<double>& a, double v) noexcept;
};

/// Snapshot of one named instrument (for reports and the Prometheus export).
struct MetricSample {
  std::string name;
  enum class Kind { Counter, Gauge, Histogram } kind = Kind::Counter;
  double value = 0.0;           ///< counter value or gauge reading
  std::uint64_t count = 0;      ///< histogram observation count
  double sum = 0.0, min = 0.0, max = 0.0, p50 = 0.0, p95 = 0.0, p99 = 0.0,
         p999 = 0.0;
  std::vector<double> bucket_bounds;          ///< histogram "le" upper bounds
  std::vector<std::uint64_t> bucket_counts;   ///< per-bucket (non-cumulative),
                                              ///< size = bounds + 1 (overflow)
};

/// Process-wide instrument registry. Lookup takes a mutex — cache the
/// returned reference outside loops; recording on the instrument itself is
/// lock-free.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Creates the histogram with `upper_bounds` on first use; later calls
  /// with the same name return the existing instrument unchanged.
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds = {});

  /// Zero every instrument's value (identities and bounds survive).
  void reset();

  /// Stable-ordered samples of every instrument.
  [[nodiscard]] std::vector<MetricSample> samples() const;

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

/// RAII timer recording seconds into a named histogram on destruction.
/// Resolves the histogram only when enabled, so a disabled timer costs one
/// branch at construction and one at destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* histogram_name);
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer();

 private:
  const char* name_;
  double start_ = 0.0;  ///< obs epoch seconds; < 0 means disabled at entry
};

}  // namespace gsx::obs
