#include "obs/export_prom.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string_view>
#include <utility>

namespace gsx::obs {

namespace {

void append_number(std::string& out, double v) {
  if (std::isnan(v)) {
    out += "NaN";
    return;
  }
  if (std::isinf(v)) {
    out += v > 0 ? "+Inf" : "-Inf";
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;
  out.append(buf, ptr);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;
  out.append(buf, ptr);
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out = "gsx_";
  out.reserve(name.size() + 4);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string prometheus_render(const MetricSample& s) {
  const std::string name = prometheus_name(s.name);
  std::string out;
  switch (s.kind) {
    case MetricSample::Kind::Counter:
      out += "# TYPE " + name + " counter\n";
      out += name + " ";
      append_number(out, s.value);
      out.push_back('\n');
      break;
    case MetricSample::Kind::Gauge:
      out += "# TYPE " + name + " gauge\n";
      out += name + " ";
      append_number(out, s.value);
      out.push_back('\n');
      break;
    case MetricSample::Kind::Histogram: {
      out += "# TYPE " + name + " histogram\n";
      std::uint64_t cum = 0;
      for (std::size_t b = 0; b < s.bucket_bounds.size(); ++b) {
        cum += b < s.bucket_counts.size() ? s.bucket_counts[b] : 0;
        out += name + "_bucket{le=\"";
        append_number(out, s.bucket_bounds[b]);
        out += "\"} ";
        append_u64(out, cum);
        out.push_back('\n');
      }
      // +Inf and _count come from the same per-bucket sums so the exposition
      // is internally consistent even if observe() raced the snapshot.
      if (!s.bucket_counts.empty()) cum += s.bucket_counts.back();
      out += name + "_bucket{le=\"+Inf\"} ";
      append_u64(out, cum);
      out.push_back('\n');
      out += name + "_sum ";
      append_number(out, s.sum);
      out.push_back('\n');
      out += name + "_count ";
      append_u64(out, cum);
      out.push_back('\n');
      break;
    }
  }
  return out;
}

std::string render_prometheus() {
  std::string out;
  for (const MetricSample& s : Registry::instance().samples())
    out += prometheus_render(s);
  return out;
}

namespace {

/// Call `fn(line)` for every newline-terminated line of `text`.
template <typename Fn>
void for_each_line(const std::string& text, Fn&& fn) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    fn(std::string_view(text).substr(pos, nl - pos));
    pos = nl + 1;
  }
}

}  // namespace

std::string prometheus_with_label(const std::string& exposition,
                                  const std::string& key,
                                  const std::string& value) {
  const std::string pair = key + "=\"" + value + "\"";
  std::string out;
  out.reserve(exposition.size() + 64);
  for_each_line(exposition, [&](std::string_view line) {
    if (line.empty() || line.front() == '#') {
      out.append(line);
      out.push_back('\n');
      return;
    }
    // A sample line is "<series> <value>"; the series may carry a label set.
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos) {  // malformed: pass through untouched
      out.append(line);
      out.push_back('\n');
      return;
    }
    const std::string_view series = line.substr(0, sp);
    const std::size_t brace = series.find('{');
    if (brace == std::string::npos) {
      out.append(series);
      out.push_back('{');
      out.append(pair);
      out.push_back('}');
    } else {
      out.append(series.substr(0, brace + 1));
      out.append(pair);
      out.push_back(',');
      out.append(series.substr(brace + 1));
    }
    out.append(line.substr(sp));
    out.push_back('\n');
  });
  return out;
}

std::string prometheus_merge(const std::vector<std::string>& parts) {
  std::string out;
  std::vector<std::string> seen_types;  // "# TYPE <name> <kind>" lines kept
  for (const std::string& part : parts) {
    for_each_line(part, [&](std::string_view line) {
      if (line.rfind("# TYPE ", 0) == 0) {
        for (const std::string& s : seen_types)
          if (s == line) return;  // family already declared by an earlier part
        seen_types.emplace_back(line);
      }
      out.append(line);
      out.push_back('\n');
    });
  }
  return out;
}

double prometheus_histogram_quantile(const std::string& exposition,
                                     const std::string& family, double q) {
  // Aggregate cumulative bucket counts across label sets (a federated
  // exposition carries one set of buckets per replica).
  const std::string bucket_prefix = family + "_bucket{";
  std::vector<std::pair<double, double>> buckets;  // bound -> cumulative count
  for_each_line(exposition, [&](std::string_view line) {
    if (line.rfind(bucket_prefix, 0) != 0) return;
    const std::size_t le = line.find("le=\"");
    if (le == std::string::npos) return;
    const std::size_t le_end = line.find('"', le + 4);
    if (le_end == std::string::npos) return;
    const std::string bound_s(line.substr(le + 4, le_end - le - 4));
    const double bound =
        bound_s == "+Inf" ? std::numeric_limits<double>::infinity()
                          : std::strtod(bound_s.c_str(), nullptr);
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos) return;
    const double count = std::strtod(std::string(line.substr(sp + 1)).c_str(), nullptr);
    for (auto& [b, c] : buckets) {
      if (b == bound) {
        c += count;
        return;
      }
    }
    buckets.emplace_back(bound, count);
  });
  if (buckets.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(buckets.begin(), buckets.end());
  const double total = buckets.back().second;
  if (total <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  const double target = q * total;
  double largest_finite = std::numeric_limits<double>::quiet_NaN();
  for (const auto& [bound, cum] : buckets) {
    if (std::isfinite(bound)) largest_finite = bound;
    if (cum >= target && std::isfinite(bound)) return bound;
  }
  // q falls in the overflow bucket: the text has no observed max, so the
  // largest finite bound is the best available estimate.
  return largest_finite;
}

}  // namespace gsx::obs
