#include "obs/export_prom.hpp"

#include <charconv>
#include <cmath>

namespace gsx::obs {

namespace {

void append_number(std::string& out, double v) {
  if (std::isnan(v)) {
    out += "NaN";
    return;
  }
  if (std::isinf(v)) {
    out += v > 0 ? "+Inf" : "-Inf";
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;
  out.append(buf, ptr);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;
  out.append(buf, ptr);
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out = "gsx_";
  out.reserve(name.size() + 4);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string prometheus_render(const MetricSample& s) {
  const std::string name = prometheus_name(s.name);
  std::string out;
  switch (s.kind) {
    case MetricSample::Kind::Counter:
      out += "# TYPE " + name + " counter\n";
      out += name + " ";
      append_number(out, s.value);
      out.push_back('\n');
      break;
    case MetricSample::Kind::Gauge:
      out += "# TYPE " + name + " gauge\n";
      out += name + " ";
      append_number(out, s.value);
      out.push_back('\n');
      break;
    case MetricSample::Kind::Histogram: {
      out += "# TYPE " + name + " histogram\n";
      std::uint64_t cum = 0;
      for (std::size_t b = 0; b < s.bucket_bounds.size(); ++b) {
        cum += b < s.bucket_counts.size() ? s.bucket_counts[b] : 0;
        out += name + "_bucket{le=\"";
        append_number(out, s.bucket_bounds[b]);
        out += "\"} ";
        append_u64(out, cum);
        out.push_back('\n');
      }
      // +Inf and _count come from the same per-bucket sums so the exposition
      // is internally consistent even if observe() raced the snapshot.
      if (!s.bucket_counts.empty()) cum += s.bucket_counts.back();
      out += name + "_bucket{le=\"+Inf\"} ";
      append_u64(out, cum);
      out.push_back('\n');
      out += name + "_sum ";
      append_number(out, s.sum);
      out.push_back('\n');
      out += name + "_count ";
      append_u64(out, cum);
      out.push_back('\n');
      break;
    }
  }
  return out;
}

std::string render_prometheus() {
  std::string out;
  for (const MetricSample& s : Registry::instance().samples())
    out += prometheus_render(s);
  return out;
}

}  // namespace gsx::obs
