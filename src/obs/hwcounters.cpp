#include "obs/hwcounters.hpp"

#include <atomic>
#include <cstring>
#include <mutex>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "obs/metrics.hpp"

namespace gsx::obs {

namespace {

std::atomic<bool> g_hw_enabled{false};
// -1 unknown, 0 unavailable, 1 available. Probed by the first hw_read().
std::atomic<int> g_hw_state{-1};

std::atomic<std::uint64_t> g_cycles{0};
std::atomic<std::uint64_t> g_instructions{0};
std::atomic<std::uint64_t> g_llc{0};
std::atomic<std::uint64_t> g_scopes{0};
std::atomic<double> g_seconds{0.0};
std::atomic<bool> g_live{false};

std::mutex g_peaks_mu;
RooflinePeaks g_peaks;

#if defined(__linux__)

int perf_open(std::uint32_t type, std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = group_fd < 0 ? 1 : 0;  // leader starts disabled, then enabled
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP;
  return static_cast<int>(
      ::syscall(SYS_perf_event_open, &attr, 0, -1, group_fd, 0));
}

/// Per-thread counter group: cycles (leader), instructions, LLC misses.
/// Opened lazily, closed on thread exit. A failed open marks the process
/// state unavailable so other threads stop probing.
struct ThreadGroup {
  int leader = -1;
  int instructions = -1;
  int llc = -1;

  bool open() {
    leader = perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
    if (leader < 0) return false;
    instructions = perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, leader);
    llc = perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, leader);
    ::ioctl(leader, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ::ioctl(leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    return true;
  }

  ~ThreadGroup() {
    if (llc >= 0) ::close(llc);
    if (instructions >= 0) ::close(instructions);
    if (leader >= 0) ::close(leader);
  }
};

HwReading read_group() noexcept {
  thread_local ThreadGroup group;
  thread_local int local_state = -1;
  HwReading r;
  if (local_state == 0) return r;
  if (local_state < 0) {
    // Respect an earlier process-wide verdict before probing again.
    if (g_hw_state.load(std::memory_order_relaxed) == 0) {
      local_state = 0;
      return r;
    }
    local_state = group.open() ? 1 : 0;
    int expected = -1;
    g_hw_state.compare_exchange_strong(expected, local_state,
                                       std::memory_order_relaxed);
    if (local_state == 0) {
      g_hw_state.store(0, std::memory_order_relaxed);
      return r;
    }
  }
  // PERF_FORMAT_GROUP layout: { nr, value[nr] } in open order. Siblings that
  // failed to open (e.g. no LLC event on this PMU) are simply absent.
  std::uint64_t buf[8] = {};
  const ssize_t n = ::read(group.leader, buf, sizeof(buf));
  if (n < static_cast<ssize_t>(2 * sizeof(std::uint64_t))) return r;
  const std::uint64_t nr = buf[0];
  std::size_t vi = 1;  // buf[1 + k] holds value k; value k exists iff vi <= nr
  if (vi <= nr) r.cycles = buf[vi++];
  if (group.instructions >= 0 && vi <= nr) r.instructions = buf[vi++];
  if (group.llc >= 0 && vi <= nr) r.llc_misses = buf[vi];
  r.valid = true;
  return r;
}

#else

HwReading read_group() noexcept { return {}; }

#endif  // __linux__

}  // namespace

bool hw_available() noexcept {
  int state = g_hw_state.load(std::memory_order_relaxed);
  if (state < 0) {
    // Probe via a real read so availability and readability agree.
    (void)read_group();
    state = g_hw_state.load(std::memory_order_relaxed);
    if (state < 0) {
      state = 0;
      g_hw_state.store(0, std::memory_order_relaxed);
    }
  }
  return state == 1;
}

void set_hw_enabled(bool on) noexcept {
  g_hw_enabled.store(on, std::memory_order_relaxed);
}

bool hw_enabled() noexcept { return g_hw_enabled.load(std::memory_order_relaxed); }

HwReading hw_read() noexcept {
  if (!hw_enabled()) return {};
  if (g_hw_state.load(std::memory_order_relaxed) == 0) return {};
  return read_group();
}

void hw_accumulate(const HwReading& begin, const HwReading& end,
                   double seconds) noexcept {
  if (!begin.valid || !end.valid) return;
  g_cycles.fetch_add(end.cycles - begin.cycles, std::memory_order_relaxed);
  g_instructions.fetch_add(end.instructions - begin.instructions,
                           std::memory_order_relaxed);
  g_llc.fetch_add(end.llc_misses - begin.llc_misses, std::memory_order_relaxed);
  g_scopes.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> needs C++20 library support; CAS loop is
  // portable and this path runs once per kernel scope, not per element.
  double cur = g_seconds.load(std::memory_order_relaxed);
  while (!g_seconds.compare_exchange_weak(cur, cur + seconds,
                                          std::memory_order_relaxed)) {
  }
  g_live.store(true, std::memory_order_relaxed);
}

HwTotals hw_totals() noexcept {
  HwTotals t;
  t.cycles = g_cycles.load(std::memory_order_relaxed);
  t.instructions = g_instructions.load(std::memory_order_relaxed);
  t.llc_misses = g_llc.load(std::memory_order_relaxed);
  t.scopes = g_scopes.load(std::memory_order_relaxed);
  t.seconds = g_seconds.load(std::memory_order_relaxed);
  t.live = g_live.load(std::memory_order_relaxed);
  return t;
}

void reset_hw() noexcept {
  g_cycles.store(0, std::memory_order_relaxed);
  g_instructions.store(0, std::memory_order_relaxed);
  g_llc.store(0, std::memory_order_relaxed);
  g_scopes.store(0, std::memory_order_relaxed);
  g_seconds.store(0.0, std::memory_order_relaxed);
  g_live.store(false, std::memory_order_relaxed);
}

void publish_hw_metrics() {
  const HwTotals t = hw_totals();
  auto& reg = Registry::instance();
  reg.gauge("la.hw.cycles").set(static_cast<double>(t.cycles));
  reg.gauge("la.hw.instructions").set(static_cast<double>(t.instructions));
  reg.gauge("la.hw.llc_misses").set(static_cast<double>(t.llc_misses));
  reg.gauge("la.hw.scopes").set(static_cast<double>(t.scopes));
  reg.gauge("la.hw.available").set(hw_available() ? 1.0 : 0.0);
}

void set_roofline_peaks(const RooflinePeaks& peaks) {
  std::lock_guard lk(g_peaks_mu);
  g_peaks = peaks;
}

RooflinePeaks roofline_peaks() {
  std::lock_guard lk(g_peaks_mu);
  return g_peaks;
}

}  // namespace gsx::obs
