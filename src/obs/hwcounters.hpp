// Hardware performance counters for achieved-vs-peak roofline accounting.
//
// A thin perf_event_open wrapper sampling one counter group per thread —
// cycles, instructions, LLC misses — around instrumented kernel bodies (the
// KernelTimer RAII in obs/flops.hpp). Containers and locked-down kernels
// routinely deny perf_event_open (perf_event_paranoid, seccomp); the wrapper
// probes once per process and degrades to a zero-cost no-op, and every
// report marks the counters "live" or "unavailable" explicitly so a roofline
// number is never silently fabricated.
//
// Sampling is additionally gated behind set_hw_enabled (default off):
// reading the group costs one read() syscall per scope boundary, which the
// always-on telemetry budget does not pay — profiling entry points
// (gsx_cli --profile, benches) opt in.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/precision.hpp"

namespace gsx::obs {

/// One raw reading of this thread's counter group.
struct HwReading {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  bool valid = false;
};

/// True when perf_event_open works here (probed once, process-wide).
[[nodiscard]] bool hw_available() noexcept;

/// Master sampling switch (default off). Enabling when hw_available() is
/// false is harmless: scopes stay no-ops.
void set_hw_enabled(bool on) noexcept;
[[nodiscard]] bool hw_enabled() noexcept;

/// Read this thread's counter group, opening it on first use. Invalid when
/// sampling is disabled or the counters are unavailable.
[[nodiscard]] HwReading hw_read() noexcept;

/// Deltas accumulated across every sampled kernel scope, plus the wall
/// seconds those scopes spanned (cycles / seconds = effective kernel-time
/// clock, the honest GHz for the peak model).
struct HwTotals {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t scopes = 0;
  double seconds = 0.0;
  bool live = false;  ///< at least one scope produced valid readings
  [[nodiscard]] double ipc() const noexcept {
    return cycles > 0 ? static_cast<double>(instructions) / static_cast<double>(cycles)
                      : 0.0;
  }
  [[nodiscard]] double effective_ghz() const noexcept {
    return seconds > 0.0 ? static_cast<double>(cycles) / 1e9 / seconds : 0.0;
  }
};

/// Fold one scope's begin/end readings into the process totals (relaxed
/// atomics; no-op when either reading is invalid).
void hw_accumulate(const HwReading& begin, const HwReading& end,
                   double seconds) noexcept;
[[nodiscard]] HwTotals hw_totals() noexcept;
void reset_hw() noexcept;

/// Publish the totals as la.hw.* gauges (idempotent — gauges, not counters).
void publish_hw_metrics();

/// Peak model injected by layers that link the LA plane (obs cannot depend
/// on la): per-precision GEMM peak GFLOP/s at 1 GHz (la::gemm_peak_gflops
/// with ghz = 1) plus a measured fallback clock for when cycle counters are
/// unavailable. Unset (all zeros) = roofline percentages are omitted.
struct RooflinePeaks {
  std::array<double, kNumPrecisions> peak_gflops_per_ghz{};
  double fallback_ghz = 0.0;
  std::string isa;
};
void set_roofline_peaks(const RooflinePeaks& peaks);
[[nodiscard]] RooflinePeaks roofline_peaks();

}  // namespace gsx::obs
