// Algorithm 2: auto-tuning band_size_dense.
//
// Given a matrix compressed with band_size = 1 (everything off-diagonal
// low-rank) and the kernel performance model, grow the dense band while the
// predicted dense time of each sub-diagonal beats the predicted TLR time
// (within a fluctuation factor). High-rank tiles cluster near the diagonal
// under Morton ordering, so the loop terminates after a few sub-diagonals.
#pragma once

#include <cstddef>
#include <vector>

#include "perfmodel/kernel_model.hpp"
#include "tile/sym_tile_matrix.hpp"

namespace gsx::perfmodel {

struct BandDecision {
  std::size_t band_size_dense = 1;
  /// Predicted dense/TLR seconds per examined sub-diagonal (diagnostics).
  std::vector<double> dense_seconds;
  std::vector<double> tlr_seconds;
};

/// `a` must hold its off-diagonal tiles compressed (band_size = 1). The
/// returned band_size_dense counts the diagonal, i.e. a value of 3 means
/// sub-diagonals 1 and 2 should be stored dense (cf. Fig. 3(b)).
BandDecision tune_band_size(const tile::SymTileMatrix& a, const KernelModel& model,
                            double fluctuation = 1.0);

/// Predict the per-sub-diagonal cost of TRSM+GEMM executed dense at the
/// given precision mix vs executed low-rank (exposed for the ablation
/// bench; `tune_band_size` wraps it).
void predict_subdiagonal_cost(const tile::SymTileMatrix& a, const KernelModel& model,
                              std::size_t subdiag, double& dense_out, double& tlr_out);

}  // namespace gsx::perfmodel
