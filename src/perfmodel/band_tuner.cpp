#include "perfmodel/band_tuner.hpp"

#include "common/error.hpp"

namespace gsx::perfmodel {

void predict_subdiagonal_cost(const tile::SymTileMatrix& a, const KernelModel& model,
                              std::size_t subdiag, double& dense_out, double& tlr_out) {
  GSX_REQUIRE(subdiag >= 1 && subdiag < a.nt(), "predict_subdiagonal_cost: bad sub-diagonal");
  dense_out = 0.0;
  tlr_out = 0.0;
  const std::size_t nt = a.nt();
  for (std::size_t j = 0; j + subdiag < nt; ++j) {
    const std::size_t i = j + subdiag;
    const tile::Tile& t = a.at(i, j);
    // During factorization, tile (i, j) receives one TRSM and j GEMM
    // updates. TRSM cost is modelled at roughly half a GEMM; the model
    // compares the dominant GEMM stream, as the paper's Algorithm 2 does.
    const double ops = 0.5 + static_cast<double>(j);
    // Dense execution at the tile's storage precision (FP64/FP32/FP16).
    const Precision p =
        (t.format() == tile::TileFormat::Dense) ? t.precision() : Precision::FP32;
    dense_out += ops * model.dense_gemm_seconds(p);
    // Low-rank execution at the tile's (compressed) rank.
    tlr_out += ops * model.tlr_gemm_seconds(t.rank());
  }
}

BandDecision tune_band_size(const tile::SymTileMatrix& a, const KernelModel& model,
                            double fluctuation) {
  GSX_REQUIRE(fluctuation > 0, "tune_band_size: fluctuation must be positive");
  BandDecision out;
  std::size_t id = 1;
  while (id < a.nt()) {
    double dense_s = 0.0, tlr_s = 0.0;
    predict_subdiagonal_cost(a, model, id, dense_s, tlr_s);
    out.dense_seconds.push_back(dense_s);
    out.tlr_seconds.push_back(tlr_s);
    if (!(dense_s < fluctuation * tlr_s)) break;
    ++id;
  }
  out.band_size_dense = id;  // sub-diagonals < id run dense (diagonal included)
  return out;
}

}  // namespace gsx::perfmodel
