// Performance model for the structure-aware runtime decision (Section VI-B).
//
// The decision "dense or TLR?" for a tile compares the predicted cost of the
// dense GEMM (compute-bound, 2*ts^3 flops) against the TLR GEMM
// (memory-bound, O(ts*k^2) flops depending on the rank k the compression
// tolerance produced). The model is either calibrated by running the actual
// kernels on one core (as the paper does on an A64FX core for Fig. 5) or
// derived from flop counts with fixed rates (deterministic, for tests).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/precision.hpp"
#include "tlr/compression.hpp"

namespace gsx::perfmodel {

/// Flops of a dense ts x ts GEMM (C -= A B^T).
[[nodiscard]] double dense_gemm_flops(std::size_t ts) noexcept;

/// Flop estimate of one TLR GEMM update (LR product of rank-k operands plus
/// QR-based recompression of the rank-2k accumulation on a ts x ts tile).
[[nodiscard]] double tlr_gemm_flops(std::size_t ts, std::size_t rank) noexcept;

/// One measured point of the TLR GEMM cost curve.
struct RankSample {
  std::size_t rank = 0;
  double seconds = 0.0;
};

class KernelModel {
 public:
  /// Flop-count model with fixed rates (deterministic; default for tests).
  /// `fp64_rate_gflops` is the assumed dense FP64 throughput; FP32 is taken
  /// 2x and FP16-storage 2x again, mirroring SIMD-width scaling.
  static KernelModel theoretical(std::size_t ts, double fp64_rate_gflops = 2.0);

  /// Calibrate by timing the real kernels on this machine: dense GEMM per
  /// precision and the TLR GEMM (with the given rounding method) at each
  /// rank in `ranks`.
  static KernelModel calibrate(std::size_t ts, std::span<const std::size_t> ranks,
                               std::uint64_t seed = 7,
                               tlr::RoundingMethod rounding = tlr::RoundingMethod::Rrqr);

  [[nodiscard]] std::size_t tile_size() const noexcept { return ts_; }

  /// Predicted seconds of one dense tile GEMM at storage precision `p`.
  [[nodiscard]] double dense_gemm_seconds(Precision p) const;

  /// Predicted seconds of one TLR GEMM update at rank `k` (interpolated
  /// between samples, extrapolated by the flop model beyond them).
  [[nodiscard]] double tlr_gemm_seconds(std::size_t rank) const;

  /// Smallest rank at which the TLR GEMM is no cheaper than the dense FP64
  /// GEMM — the crossover of Fig. 5 (~200 on the paper's A64FX core).
  [[nodiscard]] std::size_t crossover_rank() const;

  [[nodiscard]] const std::vector<RankSample>& samples() const noexcept { return samples_; }

 private:
  std::size_t ts_ = 0;
  double dense_seconds_[kNumPrecisions] = {0, 0, 0};
  std::vector<RankSample> samples_;  // ascending rank
};

}  // namespace gsx::perfmodel
