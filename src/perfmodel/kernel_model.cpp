#include "perfmodel/kernel_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/half.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "la/blas.hpp"
#include "la/convert.hpp"
#include "la/half_blas.hpp"
#include "la/matrix.hpp"
#include "tlr/lr_kernels.hpp"

namespace gsx::perfmodel {

double dense_gemm_flops(std::size_t ts) noexcept {
  const double t = static_cast<double>(ts);
  return 2.0 * t * t * t;
}

double tlr_gemm_flops(std::size_t ts, std::size_t rank) noexcept {
  // LR x LR product (core + one side): ~4*ts*k^2 + recompression of the
  // stacked rank-2k factors: two tall QRs (~16*ts*k^2), the 2k x 2k core
  // SVD (Jacobi, a few hundred k^3), and re-forming U', V' (~8*ts*k^2).
  const double t = static_cast<double>(ts);
  const double k = static_cast<double>(rank);
  return 28.0 * t * k * k + 240.0 * k * k * k;
}

KernelModel KernelModel::theoretical(std::size_t ts, double fp64_rate_gflops) {
  GSX_REQUIRE(ts >= 2 && fp64_rate_gflops > 0, "KernelModel: invalid parameters");
  KernelModel m;
  m.ts_ = ts;
  const double rate64 = fp64_rate_gflops * 1e9;  // flops per second
  m.dense_seconds_[static_cast<int>(Precision::FP64)] = dense_gemm_flops(ts) / rate64;
  m.dense_seconds_[static_cast<int>(Precision::FP32)] = dense_gemm_flops(ts) / (2 * rate64);
  m.dense_seconds_[static_cast<int>(Precision::FP16)] = dense_gemm_flops(ts) / (4 * rate64);
  m.dense_seconds_[static_cast<int>(Precision::BF16)] = dense_gemm_flops(ts) / (4 * rate64);
  // TLR kernels (small GEMMs + tall QR) run near the dense flop rate in this
  // implementation; memory-bound effects appear only at large tile sizes.
  const double tlr_rate = 1.0 * rate64;
  for (std::size_t k = 1; k <= ts; k = std::max<std::size_t>(k + 1, k * 5 / 4))
    m.samples_.push_back({k, tlr_gemm_flops(ts, k) / tlr_rate});
  return m;
}

namespace {

double time_dense_gemm64(std::size_t ts, Rng& rng) {
  la::Matrix<double> a(ts, ts), b(ts, ts), c(ts, ts);
  for (std::size_t j = 0; j < ts; ++j)
    for (std::size_t i = 0; i < ts; ++i) {
      a(i, j) = rng.normal();
      b(i, j) = rng.normal();
    }
  Timer t;
  la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, -1.0, a.cview(), b.cview(), 1.0,
                   c.view());
  return t.seconds();
}

double time_dense_gemm32(std::size_t ts, Rng& rng) {
  la::Matrix<float> a(ts, ts), b(ts, ts), c(ts, ts);
  for (std::size_t j = 0; j < ts; ++j)
    for (std::size_t i = 0; i < ts; ++i) {
      a(i, j) = static_cast<float>(rng.normal());
      b(i, j) = static_cast<float>(rng.normal());
    }
  Timer t;
  la::gemm<float>(la::Trans::NoTrans, la::Trans::Trans, -1.0f, a.cview(), b.cview(), 1.0f,
                  c.view());
  return t.seconds();
}

double time_dense_gemm16(std::size_t ts, Rng& rng) {
  la::Matrix<half> a(ts, ts), b(ts, ts), c(ts, ts);
  for (std::size_t j = 0; j < ts; ++j)
    for (std::size_t i = 0; i < ts; ++i) {
      a(i, j) = half(rng.normal());
      b(i, j) = half(rng.normal());
    }
  Timer t;
  la::hgemm(la::Trans::NoTrans, la::Trans::Trans, -1.0f, a.cview(), b.cview(), 1.0f,
            c.view());
  return t.seconds();
}

double time_dense_gemm_bf16(std::size_t ts, Rng& rng) {
  la::Matrix<bfloat16> a(ts, ts), b(ts, ts), c(ts, ts);
  for (std::size_t j = 0; j < ts; ++j)
    for (std::size_t i = 0; i < ts; ++i) {
      a(i, j) = bfloat16(rng.normal());
      b(i, j) = bfloat16(rng.normal());
    }
  Timer t;
  la::bgemm(la::Trans::NoTrans, la::Trans::Trans, -1.0f, a.cview(), b.cview(), 1.0f,
            c.view());
  return t.seconds();
}

double time_tlr_gemm(std::size_t ts, std::size_t rank, Rng& rng,
                     tlr::RoundingMethod rounding) {
  // Representative TLR GEMM: rank-k LR x LR product accumulated into a
  // rank-k LR tile with rounding back to rank ~k.
  auto randmat = [&](std::size_t r, std::size_t c) {
    la::Matrix<double> m(r, c);
    for (std::size_t j = 0; j < c; ++j)
      for (std::size_t i = 0; i < r; ++i) m(i, j) = rng.normal();
    return m;
  };
  la::Matrix<double> ua = randmat(ts, rank), va = randmat(ts, rank);
  la::Matrix<double> ub = randmat(ts, rank), vb = randmat(ts, rank);
  la::Matrix<double> uc = randmat(ts, rank), vc = randmat(ts, rank);
  Timer t;
  const tlr::LrProduct p =
      tlr::product_lr_lr(tlr::LrView{ua.cview(), va.cview()},
                         tlr::LrView{ub.cview(), vb.cview()});
  tlr::lr_axpy_rounded(-1.0, p, uc, vc, /*abs_tol=*/1e-8, rounding);
  return t.seconds();
}

}  // namespace

KernelModel KernelModel::calibrate(std::size_t ts, std::span<const std::size_t> ranks,
                                   std::uint64_t seed, tlr::RoundingMethod rounding) {
  GSX_REQUIRE(ts >= 2 && !ranks.empty(), "KernelModel::calibrate: invalid inputs");
  KernelModel m;
  m.ts_ = ts;
  Rng rng(seed);
  // Median of three repetitions per point keeps scheduler noise out.
  auto median3 = [](double a, double b, double c) {
    return std::max(std::min(a, b), std::min(std::max(a, b), c));
  };
  m.dense_seconds_[static_cast<int>(Precision::FP64)] =
      median3(time_dense_gemm64(ts, rng), time_dense_gemm64(ts, rng),
              time_dense_gemm64(ts, rng));
  m.dense_seconds_[static_cast<int>(Precision::FP32)] =
      median3(time_dense_gemm32(ts, rng), time_dense_gemm32(ts, rng),
              time_dense_gemm32(ts, rng));
  m.dense_seconds_[static_cast<int>(Precision::FP16)] =
      median3(time_dense_gemm16(ts, rng), time_dense_gemm16(ts, rng),
              time_dense_gemm16(ts, rng));
  m.dense_seconds_[static_cast<int>(Precision::BF16)] =
      median3(time_dense_gemm_bf16(ts, rng), time_dense_gemm_bf16(ts, rng),
              time_dense_gemm_bf16(ts, rng));
  for (std::size_t k : ranks) {
    GSX_REQUIRE(k >= 1 && k <= ts, "KernelModel::calibrate: rank out of range");
    const double s =
        median3(time_tlr_gemm(ts, k, rng, rounding), time_tlr_gemm(ts, k, rng, rounding),
                time_tlr_gemm(ts, k, rng, rounding));
    m.samples_.push_back({k, s});
  }
  std::sort(m.samples_.begin(), m.samples_.end(),
            [](const RankSample& a, const RankSample& b) { return a.rank < b.rank; });
  return m;
}

double KernelModel::dense_gemm_seconds(Precision p) const {
  return dense_seconds_[static_cast<int>(p)];
}

double KernelModel::tlr_gemm_seconds(std::size_t rank) const {
  GSX_REQUIRE(!samples_.empty(), "KernelModel: no TLR samples");
  if (rank == 0) return 0.0;
  if (rank <= samples_.front().rank) {
    // Scale down by the flop ratio from the smallest sample.
    const auto& s = samples_.front();
    return s.seconds * tlr_gemm_flops(ts_, rank) / tlr_gemm_flops(ts_, s.rank);
  }
  if (rank >= samples_.back().rank) {
    const auto& s = samples_.back();
    return s.seconds * tlr_gemm_flops(ts_, rank) / tlr_gemm_flops(ts_, s.rank);
  }
  // Linear interpolation between bracketing samples.
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    if (samples_[i].rank >= rank) {
      const auto& lo = samples_[i - 1];
      const auto& hi = samples_[i];
      const double f = static_cast<double>(rank - lo.rank) /
                       static_cast<double>(hi.rank - lo.rank);
      return lo.seconds + f * (hi.seconds - lo.seconds);
    }
  }
  return samples_.back().seconds;
}

std::size_t KernelModel::crossover_rank() const {
  const double dense = dense_gemm_seconds(Precision::FP64);
  for (std::size_t k = 1; k <= ts_; ++k)
    if (tlr_gemm_seconds(k) >= dense) return k;
  return ts_ + 1;  // TLR always wins up to full rank
}

}  // namespace gsx::perfmodel
