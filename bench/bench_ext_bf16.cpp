// Extension (paper Section VII-A outlook): BF16 storage in the adaptive
// precision rule.
//
// FP16's narrow exponent range forbids storing tiles whose entries fall
// into (or below) its subnormal range — the adaptive rule must keep them in
// FP32 even though their *norms* qualify for 16-bit budgets. BF16 shares
// FP32's exponent range, so those tiles demote to 16 bits. This bench shows
// the decision shift and the resulting footprint, plus the accuracy of the
// factorization (the global Frobenius guarantee is format-independent).
#include <cstdio>

#include "bench_utils.hpp"
#include "cholesky/factorize.hpp"
#include "cholesky/tile_solve.hpp"
#include "geostat/assemble.hpp"
#include "la/lapack.hpp"

namespace {

using namespace gsx;
using namespace gsx::bench;

/// Weak-correlation Matérn with a small variance: entries of far tiles fall
/// below FP16's subnormal threshold (6e-5) while staying meaningful.
tile::SymTileMatrix make_matrix(std::size_t n, std::size_t ts) {
  Rng rng(3);
  auto locs = geostat::perturbed_grid_locations(n, rng);
  geostat::sort_morton(locs);
  const geostat::MaternCovariance model(1e-4, 0.02, 0.5, 1e-10);
  tile::SymTileMatrix a(n, ts);
  geostat::fill_covariance_tiles(a, model, locs, 2);
  return a;
}

}  // namespace

int main() {
  const std::size_t n = scaled(1024);
  const std::size_t ts = 64;
  print_header("Extension - BF16 in the adaptive precision rule (weak correlation, "
               "small-variance field, n=" + std::to_string(n) + ")");

  for (bool bf16 : {false, true}) {
    auto a = make_matrix(n, ts);
    const auto before = a.to_full();
    cholesky::PrecisionPolicy policy;
    policy.rule = cholesky::PrecisionRule::AdaptiveFrobenius;
    policy.eps_target = 1e-6;
    policy.allow_fp16 = true;
    policy.allow_bf16 = bf16;
    const cholesky::PolicyStats st = cholesky::apply_precision_policy(a, policy);

    // Verify the global storage-error guarantee regardless of format.
    const auto after = a.to_full();
    double diff = 0.0, norm = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < n; ++i) {
        const double d = after(i, j) - before(i, j);
        diff += d * d;
        norm += before(i, j) * before(i, j);
      }

    cholesky::FactorOptions fopt;
    fopt.workers = 2;
    const auto rep = cholesky::tile_cholesky_dense(a, fopt);

    std::printf("\nallow_bf16 = %-5s : FP64=%zu FP32=%zu FP16=%zu BF16=%zu tiles\n",
                bf16 ? "true" : "false", st.fp64_tiles, st.fp32_tiles, st.fp16_tiles,
                st.bf16_tiles);
    std::printf("  footprint %.2f MiB (dense FP64 %.2f MiB), storage error %.2e of "
                "eps-target 1e-6, factor info=%d (%.4fs)\n",
                st.bytes_after / 1048576.0, st.bytes_before / 1048576.0,
                std::sqrt(diff / norm), rep.info, rep.seconds);
  }
  std::printf(
      "\nwithout BF16, tiny-norm tiles stall in FP32 (FP16 would underflow); with BF16 "
      "they demote to 16 bits at the same global error bound — the paper's BF16/TF32 "
      "outlook realized.\n");
  return 0;
}
