// Figs. 10-11 at scale, via the discrete-event distributed simulator.
//
// The real experiments ran on 2048-48384 Fugaku nodes with n up to 9M
// (NT ~ 3300 tiles of 2700). Here the same task DAG is replayed over a
// simulated machine: A64FX-like nodes (48 cores, ~40 GFlop/s/core effective
// FP64 — the paper reports 65% of peak with sector cache disabled), a
// TofuD-like link model, and tile structures extrapolated from the measured
// rank profiles (fast rank decay = weak correlation, slow = strong).
//
// Expected shapes (paper): MP ~constant-factor gain; MP+dense/TLR up to 12x
// at weak correlation; smaller gain for strong correlation / space-time
// (Fig. 11); all variants flatten as the node count exhausts the DAG's
// concurrency.
#include <cstdio>

#include "bench_utils.hpp"
#include "distsim/distsim.hpp"

namespace {

using namespace gsx;
using namespace gsx::distsim;

struct Scenario {
  const char* name;
  std::size_t band;   ///< Algorithm-2 dense band (wider for strong corr.)
  double decay;       ///< rank(d) = ts * exp(-decay * d)
  std::size_t min_rank;
};

}  // namespace

int main() {
  using gsx::bench::print_header;

  const std::size_t nt = static_cast<std::size_t>(256 * gsx::bench::bench_scale());
  const std::size_t ts = 2700;  // the paper's tile size at n = 1M
  char nlabel[32];
  std::snprintf(nlabel, sizeof nlabel, "%.2fM", static_cast<double>(nt * ts) / 1e6);
  print_header("Simulated Fugaku scaling (discrete-event) - NT=" + std::to_string(nt) +
               " tiles of " + std::to_string(ts) + " (n ~= " + nlabel +
               "), A64FX-like nodes");

  // Effective per-core rate: 65% of A64FX peak / 48 cores ~ 40 GFlop/s.
  const perfmodel::KernelModel kernels = perfmodel::KernelModel::theoretical(ts, 40.0);
  NodeModel node;
  node.cores = 48;
  node.kernels = &kernels;
  const LinkModel link{2.0e-6, 6.8e9};

  const TileStructure dense64 =
      TileStructure::synthetic(nt, ts, nt, 0.0, ts, /*mixed_precision=*/false);
  const TileStructure mp_dense =
      TileStructure::synthetic(nt, ts, nt, 0.0, ts, /*mixed_precision=*/true);

  for (const Scenario sc : {Scenario{"weak correlation (space)", 4, 0.73, 30},
                            Scenario{"strong correlation (space-time)", 8, 0.35, 120}}) {
    const TileStructure tlr =
        TileStructure::synthetic(nt, ts, sc.band, sc.decay, sc.min_rank, true);

    std::printf("\n==== %s (band %zu, rank decay %.2f) ====\n", sc.name, sc.band,
                sc.decay);
    std::printf("%8s | %13s %13s %13s | %8s %8s | %9s %8s\n", "nodes", "dense64 (s)",
                "MP (s)", "MP+TLR (s)", "MP spd", "TLR spd", "TLR eff", "comm GB");
    for (std::size_t nodes : {16u, 64u, 256u, 1024u, 4096u, 16384u}) {
      const ProcessGrid grid = ProcessGrid::near_square(nodes);
      const SimResult rd = simulate_cholesky(dense64, grid, node, link);
      const SimResult rm = simulate_cholesky(mp_dense, grid, node, link);
      const SimResult rt = simulate_cholesky(tlr, grid, node, link);
      std::printf("%8zu | %13.3f %13.3f %13.3f | %7.2fx %7.2fx | %8.1f%% %8.1f\n", nodes,
                  rd.makespan_seconds, rm.makespan_seconds, rt.makespan_seconds,
                  rd.makespan_seconds / rm.makespan_seconds,
                  rd.makespan_seconds / rt.makespan_seconds,
                  100.0 * rt.efficiency(grid, node),
                  static_cast<double>(rt.comm_bytes) / 1e9);
    }
  }

  // Second axis of Fig. 10: at a fixed machine size, the TLR advantage
  // grows with the matrix size (more tiles -> more off-band compression and
  // more concurrency before the critical path binds).
  std::printf("\n==== matrix-size sweep at 256 nodes, weak correlation ====\n");
  std::printf("%8s %10s | %13s %13s | %8s\n", "NT", "n", "dense64 (s)", "MP+TLR (s)",
              "TLR spd");
  const ProcessGrid grid256 = ProcessGrid::near_square(256);
  for (std::size_t nti : {64u, 128u, 256u, 384u}) {
    const TileStructure d =
        TileStructure::synthetic(nti, ts, nti, 0.0, ts, false);
    const TileStructure t = TileStructure::synthetic(nti, ts, 4, 0.73, 30, true);
    const SimResult rd = simulate_cholesky(d, grid256, node, link);
    const SimResult rt = simulate_cholesky(t, grid256, node, link);
    std::snprintf(nlabel, sizeof nlabel, "%.2fM", static_cast<double>(nti * ts) / 1e6);
    std::printf("%8zu %10s | %13.3f %13.3f | %7.2fx\n", nti, nlabel, rd.makespan_seconds,
                rt.makespan_seconds, rd.makespan_seconds / rt.makespan_seconds);
  }

  std::printf(
      "\npaper reference: Fig. 10 shows up to 12x (weak correlation, 16K nodes, n up to "
      "9M); Fig. 11 shows <10x for strongly-correlated space-time and shrinking gains at "
      "48K nodes as strong scaling saturates. The simulated speedups reproduce both "
      "trends: larger n -> larger TLR gain; more nodes at fixed n -> gains collapse onto "
      "the critical path.\n");
  return 0;
}
