// Ablation: design choices inside the TLR machinery.
//  (a) Compression kernels (truncated SVD vs ACA vs randomized SVD) on real
//      covariance blocks: time, achieved rank, achieved error.
//  (b) Low-rank rounding inside the TLR Cholesky (QR+SVD vs RRQR): whole
//      factorization time at equal tolerance, and factor agreement.
#include <cstdio>

#include "bench_utils.hpp"
#include "cholesky/factorize.hpp"
#include "cholesky/tile_solve.hpp"
#include "common/timer.hpp"
#include "geostat/assemble.hpp"
#include "la/lapack.hpp"

namespace {

using namespace gsx;
using namespace gsx::bench;

la::Matrix<double> covariance_block(std::size_t ts, double separation) {
  // Two clusters of locations `separation` apart: a far off-diagonal tile.
  Rng rng(3);
  auto a = geostat::perturbed_grid_locations(ts, rng);
  auto b = geostat::perturbed_grid_locations(ts, rng);
  for (auto& l : b) l.x += separation;
  const geostat::MaternCovariance model(1.0, 0.1, 0.5);
  return geostat::cross_covariance(model, a, b);
}

}  // namespace

int main() {
  const std::size_t ts = scaled(128);
  print_header("Ablation (a) - compression kernels on a Matérn cross-covariance block, "
               "tile " + std::to_string(ts) + ", tol 1e-8 absolute");

  std::printf("\n%-24s %8s | %12s %8s %14s\n", "method", "sep", "time (ms)", "rank",
              "error");
  for (double sep : {0.5, 2.0}) {
    const la::Matrix<double> block = covariance_block(ts, sep);
    for (auto [method, name] :
         {std::pair{tlr::CompressionMethod::SVD, "truncated SVD"},
          std::pair{tlr::CompressionMethod::ACA, "ACA (partial pivot)"},
          std::pair{tlr::CompressionMethod::RSVD, "randomized SVD"}}) {
      Rng rng(9);
      Timer t;
      const tlr::Compressed c =
          tlr::compress(method, block.cview(), 1e-8, rng, tlr::TolMode::Absolute);
      const double ms = t.milliseconds();
      std::printf("%-24s %8.1f | %12.3f %8zu %14.3e\n", name, sep, ms, c.rank(),
                  tlr::lowrank_error(block.cview(), c.u, c.v));
    }
  }

  print_header("Ablation (b) - low-rank rounding inside the TLR Cholesky "
               "(QR+SVD vs RRQR), Matérn 2D weak correlation");

  const std::size_t n = scaled(1024);
  Rng rng(5);
  auto locs = geostat::perturbed_grid_locations(n, rng);
  geostat::sort_morton(locs);
  const geostat::MaternCovariance model(1.0, 0.03, 0.5, 1e-6);

  auto make = [&] {
    tile::SymTileMatrix a(n, 64);
    geostat::fill_covariance_tiles(a, model, locs, 2);
    cholesky::TlrCompressOptions copt;
    copt.tol = 1e-8;
    copt.band_size = 2;
    copt.lr_fp32 = false;
    cholesky::compress_offband(a, copt, 2);
    return a;
  };

  std::printf("\n%-10s | %12s %10s\n", "rounding", "factor (s)", "logdet");
  la::Matrix<double> l_ref;
  for (auto [method, name] : {std::pair{tlr::RoundingMethod::QrSvd, "QR+SVD"},
                              std::pair{tlr::RoundingMethod::Rrqr, "RRQR"}}) {
    auto a = make();
    cholesky::FactorOptions fopt;
    fopt.workers = 2;
    fopt.rounding = method;
    const auto rep = cholesky::tile_cholesky_tlr(a, 1e-8, fopt);
    std::printf("%-10s | %12.4f %10.3f\n", name, rep.seconds,
                rep.info == 0 ? cholesky::tile_logdet(a) : -1.0);
  }
  std::printf("\nRRQR avoids the O(k^3)-with-large-constant Jacobi SVD of the rounding "
              "core; both meet the same tolerance (see tests).\n");
  return 0;
}
