// Fig. 5 reproduction: dense FP64 GEMM vs TLR FP64 GEMM on one core, as a
// function of the tile rank, with the time ratio and the crossover rank.
//
// Paper (A64FX, tile 800-ish): TLR GEMM cheaper below rank ~200, more
// expensive above. The absolute crossover depends on the machine; the shape
// (TLR wins at low rank, loses past an interior crossover) must reproduce.
#include <cstdio>
#include <vector>

#include "bench_utils.hpp"
#include "common/timer.hpp"
#include "la/blas.hpp"
#include "perfmodel/kernel_model.hpp"
#include "tlr/lr_kernels.hpp"

namespace {

using namespace gsx;

double time_dense(std::size_t ts, Rng& rng, int reps) {
  la::Matrix<double> a(ts, ts), b(ts, ts), c(ts, ts);
  for (std::size_t j = 0; j < ts; ++j)
    for (std::size_t i = 0; i < ts; ++i) {
      a(i, j) = rng.normal();
      b(i, j) = rng.normal();
    }
  Timer t;
  for (int r = 0; r < reps; ++r)
    la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, -1.0, a.cview(), b.cview(), 1.0,
                     c.view());
  return t.seconds() / reps;
}

double time_tlr(std::size_t ts, std::size_t rank, Rng& rng, int reps) {
  auto rand_mat = [&](std::size_t r, std::size_t c) {
    la::Matrix<double> m(r, c);
    for (std::size_t j = 0; j < c; ++j)
      for (std::size_t i = 0; i < r; ++i) m(i, j) = rng.normal();
    return m;
  };
  const auto ua = rand_mat(ts, rank), va = rand_mat(ts, rank);
  const auto ub = rand_mat(ts, rank), vb = rand_mat(ts, rank);
  Timer t;
  for (int r = 0; r < reps; ++r) {
    auto uc = rand_mat(ts, rank);
    auto vc = rand_mat(ts, rank);
    const tlr::LrProduct p = tlr::product_lr_lr(tlr::LrView{ua.cview(), va.cview()},
                                                tlr::LrView{ub.cview(), vb.cview()});
    tlr::lr_axpy_rounded(-1.0, p, uc, vc, 1e-8);
  }
  return t.seconds() / reps;
}

}  // namespace

int main() {
  using namespace gsx::bench;
  const std::size_t ts = scaled(256);
  const int reps = 3;
  Rng rng(42);

  print_header("Fig. 5 - Dense FP64 GEMM vs TLR FP64 GEMM vs rank (tile size " +
               std::to_string(ts) + ", single core, accuracy 1e-8)");

  const double dense_s = time_dense(ts, rng, reps);
  std::printf("dense FP64 GEMM: %.4f ms\n\n", dense_s * 1e3);
  std::printf("%8s %16s %16s %10s\n", "rank", "TLR GEMM (ms)", "dense (ms)",
              "dense/TLR");

  std::size_t crossover = 0;
  std::vector<std::size_t> ranks;
  for (std::size_t k = 2; k <= ts; k = (k * 3) / 2) ranks.push_back(k);
  if (ranks.back() != ts) ranks.push_back(ts);
  for (std::size_t k : ranks) {
    const double tlr_s = time_tlr(ts, k, rng, reps);
    std::printf("%8zu %16.4f %16.4f %10.2f\n", k, tlr_s * 1e3, dense_s * 1e3,
                dense_s / tlr_s);
    if (crossover == 0 && tlr_s >= dense_s) crossover = k;
  }
  if (crossover > 0)
    std::printf("\nmeasured crossover rank: ~%zu (paper: ~200 at tile 800 on A64FX)\n",
                crossover);
  else
    std::printf("\nno crossover below full rank on this machine/tile size\n");

  // Compare against the embedded performance model used by Algorithm 2.
  const std::vector<std::size_t> cal_ranks = {ts / 16, ts / 8, ts / 4, ts / 2};
  const auto model = gsx::perfmodel::KernelModel::calibrate(ts, cal_ranks);
  std::printf("performance-model crossover rank: %zu\n", model.crossover_rank());
  return 0;
}
