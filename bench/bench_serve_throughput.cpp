// Serving throughput: cached-factor batched prediction vs the
// assemble+factorize-per-call baseline.
//
// The serving subsystem's bet is that a fitted model's O(n^3) factorization
// is paid once at load, leaving each request an O(n^2 m) solve that can be
// micro-batched. This bench measures requests/s and per-request latency
// (p50/p99/p999) across concurrency levels and solver worker counts, against
// GsxModel::predict (which assembles and factors Sigma_nn on every call).
//
// With --fleet N it instead benchmarks the sharded serving fleet: for each
// replica count k = 1..N it stands up k in-process replicas plus a router,
// loads one model per shard from a shared checkpoint store, and drives
// concurrent predict clients through the router socket — aggregate req/s and
// p999 vs replica count, all emitted as gsx-bench-v1 records.
//
//   bench_serve_throughput [--json FILE] [--fleet N]   (GSX_BENCH_SCALE scales n)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_utils.hpp"
#include "core/model.hpp"
#include "geostat/kernel_registry.hpp"
#include "obs/metrics.hpp"
#include "serve/checkpoint.hpp"
#include "serve/engine.hpp"
#include "serve/listener.hpp"
#include "serve/registry.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"

namespace {

using namespace gsx;

double percentile(std::vector<double> v, double p) {
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

std::vector<geostat::Location> request_points(std::size_t m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<geostat::Location> pts(m);
  for (auto& l : pts) {
    l.x = rng.uniform();
    l.y = rng.uniform();
  }
  return pts;
}

/// --fleet N: router + k replicas per point, k = 1..N. Returns exit status.
int run_fleet_bench(std::size_t max_replicas, const std::string& json) {
  // The daemons run with recording on; the scrape-overhead cell is only
  // meaningful if the bench fleet pays the same instrumentation cost.
  obs::set_enabled(true);
  const std::size_t n = bench::scaled(600);
  const std::size_t points_per_request = 4;
  const std::size_t requests = bench::scaled(96);
  const std::size_t client_threads = 8;
  const std::vector<double> theta{1.0, 0.1, 0.5};

  bench::print_header("Sharded serving fleet: aggregate throughput vs replica "
                      "count (n = " + std::to_string(n) + ")");
  const bench::SpaceProblem p = bench::make_space_problem(n, 0.1);

  core::ModelConfig cfg;
  cfg.variant = core::ComputeVariant::DenseFP64;
  cfg.tile_size = 96;
  cfg.calibrate_perf_model = false;
  const core::GsxModel model(geostat::make_kernel("matern", theta), cfg);

  // One checkpoint in a shared store, served under one model name per shard
  // ("load" with a relative path resolves against each replica's --store).
  const std::string store =
      (std::filesystem::temp_directory_path() /
       ("gsx_bench_store_" + std::to_string(::getpid()))).string();
  std::filesystem::create_directories(store);
  {
    serve::ModelCheckpoint ckpt;
    ckpt.kernel = "matern";
    ckpt.theta = theta;
    ckpt.config = cfg;
    ckpt.train_locs = p.locs;
    ckpt.z_train = p.z;
    ckpt.factor = model.factor_at(theta, p.locs);
    serve::save_model_checkpoint(store + "/shared.ckpt", ckpt);
  }

  std::vector<bench::BenchRecord> records;
  for (std::size_t k = 1; k <= max_replicas; ++k) {
    std::vector<std::unique_ptr<serve::Server>> replicas;
    std::vector<std::thread> loops;
    serve::RouterConfig rcfg;
    rcfg.stale_after_seconds = 60.0;  // no announcers in-process; never expire
    serve::Router router(rcfg);
    for (std::size_t i = 0; i < k; ++i) {
      serve::ServerConfig scfg;
      scfg.workers = 1;
      scfg.queue_capacity = requests + client_threads;
      scfg.store_dir = store;
      replicas.push_back(std::make_unique<serve::Server>(scfg));
      const std::uint16_t port = replicas.back()->listen();
      loops.emplace_back([s = replicas.back().get()] { s->serve_forever(); });
      router.membership().join("r" + std::to_string(i), "127.0.0.1", port);
    }
    const std::uint16_t router_port = router.listen();
    loops.emplace_back([&router] { router.serve_forever(); });

    const std::size_t models = 2 * k;  // a couple of shards per replica
    {
      serve::WireClient admin;
      if (!admin.dial_tcp("127.0.0.1", router_port)) return 1;
      for (std::size_t m = 0; m < models; ++m) {
        std::string response;
        if (!admin.request("{\"op\":\"load\",\"name\":\"m" + std::to_string(m) +
                               "\",\"path\":\"shared.ckpt\"}",
                           &response))
          return 1;
      }
    }

    // One pass = the full request sweep through the router; with `scrape`
    // a background thread hammers the federated fleet_metrics verb (every
    // replica scraped per call) so the overhead of observing the fleet
    // under load is measurable rather than assumed.
    auto run_pass = [&](bool scrape, double* rps_out, double* p999_out) {
      std::vector<double> latencies(requests, -1.0);
      std::atomic<std::size_t> next{0};
      std::atomic<bool> stop_scraper{false};
      std::thread scraper;
      if (scrape) {
        scraper = std::thread([&] {
          serve::WireClient c;
          if (!c.dial_tcp("127.0.0.1", router_port)) return;
          std::string response;
          while (!stop_scraper.load(std::memory_order_acquire)) {
            if (!c.request("{\"op\":\"fleet_metrics\"}", &response)) return;
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
          }
        });
      }
      const auto t0 = std::chrono::steady_clock::now();
      std::vector<std::thread> clients;
      for (std::size_t c = 0; c < client_threads; ++c) {
        clients.emplace_back([&] {
          serve::WireClient client;
          if (!client.dial_tcp("127.0.0.1", router_port)) return;
          for (std::size_t r = next.fetch_add(1); r < requests;
               r = next.fetch_add(1)) {
            const auto pts = request_points(points_per_request, 900 + r);
            std::string req = "{\"op\":\"predict\",\"model\":\"m" +
                              std::to_string(r % models) + "\",\"points\":[";
            for (std::size_t i = 0; i < pts.size(); ++i) {
              if (i) req += ",";
              req += "[" + std::to_string(pts[i].x) + "," +
                     std::to_string(pts[i].y) + "]";
            }
            req += "]}";
            const auto r0 = std::chrono::steady_clock::now();
            std::string response;
            if (client.request(req, &response) &&
                response.find("\"ok\":true") != std::string::npos)
              latencies[r] = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - r0).count();
          }
        });
      }
      for (auto& t : clients) t.join();
      const double wall = std::chrono::duration<double>(
          std::chrono::steady_clock::now() - t0).count();
      stop_scraper.store(true, std::memory_order_release);
      if (scraper.joinable()) scraper.join();

      std::size_t failed = 0;
      std::vector<double> ok_latencies;
      for (const double l : latencies)
        l < 0 ? void(++failed) : ok_latencies.push_back(l);
      if (failed > 0 || ok_latencies.empty()) {
        std::printf("  !! %zu fleet requests failed at k=%zu\n", failed, k);
        return false;
      }
      *rps_out = static_cast<double>(requests) / wall;
      *p999_out = percentile(ok_latencies, 0.999);
      return true;
    };

    double rps = 0.0, p999 = 0.0;
    const bool pass_ok = run_pass(false, &rps, &p999);

    // At the widest fleet, measure the cost of scraping under load: the
    // federated exposition must be an observability free lunch (<2% req/s).
    double scraped_rps = 0.0, scraped_p999 = 0.0;
    bool scraped_ok = false;
    if (pass_ok && k == max_replicas)
      scraped_ok = run_pass(true, &scraped_rps, &scraped_p999);

    router.shutdown();
    for (auto& r : replicas) r->shutdown();
    for (auto& t : loops) t.join();
    if (!pass_ok) return 1;

    char label[64];
    std::snprintf(label, sizeof label, "fleet replicas=%zu", k);
    std::printf("%-34s %10.2f req/s   p999 %8.2f ms\n", label, rps, 1e3 * p999);
    records.push_back({std::string(label) + " req/s", n,
                       static_cast<double>(requests) / rps, rps});
    records.push_back({std::string(label) + " p999 seconds", n, p999, 0.0});
    if (scraped_ok) {
      const double overhead = rps > 0.0 ? (rps - scraped_rps) / rps : 0.0;
      std::snprintf(label, sizeof label, "fleet k=%zu scraped", k);
      std::printf("%-34s %10.2f req/s   p999 %8.2f ms   (%.2f%% overhead)\n",
                  label, scraped_rps, 1e3 * scraped_p999, 1e2 * overhead);
      records.push_back({std::string(label) + " req/s", n,
                         static_cast<double>(requests) / scraped_rps, scraped_rps});
      records.push_back({"fleet scrape-under-load overhead fraction", n,
                         overhead, 0.0});
    }
  }

  std::filesystem::remove_all(store);
  bench::print_rule();
  if (!json.empty()) bench::write_bench_json(json, records);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--fleet" && i + 1 < argc)
      return run_fleet_bench(std::stoul(argv[i + 1]),
                             bench::json_out_path(argc, argv));

  const std::size_t n = bench::scaled(2000);
  const std::size_t points_per_request = 4;
  const std::size_t requests = bench::scaled(64);
  const std::vector<double> theta{1.0, 0.1, 0.5};

  bench::print_header("Prediction serving: cached factor + micro-batching vs "
                      "factorize-per-call (n = " + std::to_string(n) + ")");
  const bench::SpaceProblem p = bench::make_space_problem(n, 0.1);

  core::ModelConfig cfg;
  cfg.variant = core::ComputeVariant::DenseFP64;
  cfg.tile_size = 160;
  cfg.workers = 2;
  cfg.calibrate_perf_model = false;
  const core::GsxModel model(geostat::make_kernel("matern", theta), cfg);

  std::vector<bench::BenchRecord> records;

  // --- baseline: every request assembles and factors Sigma_nn ---------------
  const std::size_t baseline_reps = std::max<std::size_t>(2, bench::scaled(3));
  double baseline_total = 0.0;
  for (std::size_t r = 0; r < baseline_reps; ++r) {
    const auto pts = request_points(points_per_request, 40 + r);
    const auto t0 = std::chrono::steady_clock::now();
    const auto out = model.predict(theta, p.locs, p.z, pts, true);
    baseline_total += std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    if (out.mean.empty()) return 1;
  }
  const double baseline_per_request = baseline_total / static_cast<double>(baseline_reps);
  std::printf("%-34s %10.4f s/request %12.2f req/s\n", "baseline (factorize per call)",
              baseline_per_request, 1.0 / baseline_per_request);
  records.push_back({"baseline per-request seconds", n, baseline_per_request, 0.0});

  // --- serving path: factor once, then batched concurrent solves ------------
  serve::ModelCheckpoint ckpt;
  ckpt.kernel = "matern";
  ckpt.theta = theta;
  ckpt.config = cfg;
  ckpt.train_locs = p.locs;
  ckpt.z_train = p.z;
  {
    const auto t0 = std::chrono::steady_clock::now();
    ckpt.factor = model.factor_at(theta, p.locs);
    const double load_s = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    std::printf("%-34s %10.4f s (one-time)\n", "factorization at load", load_s);
    records.push_back({"factor once at load seconds", n, load_s, 0.0});
  }
  const auto loaded = serve::LoadedModel::from_checkpoint("bench", std::move(ckpt));

  double best_per_request = 1e300;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}}) {
    for (const std::size_t concurrency :
         {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
      serve::KrigingEngine engine(
          serve::EngineConfig{workers, requests + concurrency, 65536});

      std::vector<double> latencies(requests);
      std::atomic<std::size_t> next{0};
      const auto t0 = std::chrono::steady_clock::now();
      std::vector<std::thread> submitters;
      for (std::size_t c = 0; c < concurrency; ++c) {
        submitters.emplace_back([&] {
          for (std::size_t r = next.fetch_add(1); r < requests;
               r = next.fetch_add(1)) {
            const auto pts = request_points(points_per_request, 900 + r);
            const auto out = engine.submit(loaded, pts, true).get();
            latencies[r] = out.ok ? out.total_seconds : -1.0;
          }
        });
      }
      for (auto& t : submitters) t.join();
      const double wall = std::chrono::duration<double>(
          std::chrono::steady_clock::now() - t0).count();
      engine.drain();

      std::size_t failed = 0;
      for (const double l : latencies)
        if (l < 0) ++failed;
      if (failed > 0) std::printf("  !! %zu requests failed\n", failed);

      const double rps = static_cast<double>(requests) / wall;
      const double p50 = percentile(latencies, 0.50);
      const double p99 = percentile(latencies, 0.99);
      const double p999 = percentile(latencies, 0.999);
      const double per_request = wall / static_cast<double>(requests);
      best_per_request = std::min(best_per_request, per_request);

      char label[96];
      std::snprintf(label, sizeof label, "engine w=%zu c=%zu", workers, concurrency);
      std::printf("%-34s %10.2f req/s   p50 %8.2f ms   p99 %8.2f ms   p999 %8.2f ms\n",
                  label, rps, 1e3 * p50, 1e3 * p99, 1e3 * p999);
      records.push_back({std::string(label) + " req/s", n, wall, rps});
      records.push_back({std::string(label) + " p50 seconds", n, p50, 0.0});
      records.push_back({std::string(label) + " p99 seconds", n, p99, 0.0});
      records.push_back({std::string(label) + " p999 seconds", n, p999, 0.0});
    }
  }

  const double speedup = baseline_per_request / best_per_request;
  bench::print_rule();
  std::printf("cached-factor speedup per request: %.1fx %s\n", speedup,
              speedup >= 5.0 ? "(>= 5x target met)" : "(below 5x target!)");
  records.push_back({"speedup vs factorize-per-call", n, speedup, 0.0});

  const std::string json = bench::json_out_path(argc, argv);
  if (!json.empty()) bench::write_bench_json(json, records);
  return 0;
}
