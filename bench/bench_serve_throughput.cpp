// Serving throughput: cached-factor batched prediction vs the
// assemble+factorize-per-call baseline.
//
// The serving subsystem's bet is that a fitted model's O(n^3) factorization
// is paid once at load, leaving each request an O(n^2 m) solve that can be
// micro-batched. This bench measures requests/s and per-request latency
// (p50/p99/p999) across concurrency levels and solver worker counts, against
// GsxModel::predict (which assembles and factors Sigma_nn on every call).
//
//   bench_serve_throughput [--json FILE]   (GSX_BENCH_SCALE scales n)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "bench_utils.hpp"
#include "core/model.hpp"
#include "geostat/kernel_registry.hpp"
#include "serve/engine.hpp"
#include "serve/registry.hpp"

namespace {

using namespace gsx;

double percentile(std::vector<double> v, double p) {
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

std::vector<geostat::Location> request_points(std::size_t m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<geostat::Location> pts(m);
  for (auto& l : pts) {
    l.x = rng.uniform();
    l.y = rng.uniform();
  }
  return pts;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = bench::scaled(2000);
  const std::size_t points_per_request = 4;
  const std::size_t requests = bench::scaled(64);
  const std::vector<double> theta{1.0, 0.1, 0.5};

  bench::print_header("Prediction serving: cached factor + micro-batching vs "
                      "factorize-per-call (n = " + std::to_string(n) + ")");
  const bench::SpaceProblem p = bench::make_space_problem(n, 0.1);

  core::ModelConfig cfg;
  cfg.variant = core::ComputeVariant::DenseFP64;
  cfg.tile_size = 160;
  cfg.workers = 2;
  cfg.calibrate_perf_model = false;
  const core::GsxModel model(geostat::make_kernel("matern", theta), cfg);

  std::vector<bench::BenchRecord> records;

  // --- baseline: every request assembles and factors Sigma_nn ---------------
  const std::size_t baseline_reps = std::max<std::size_t>(2, bench::scaled(3));
  double baseline_total = 0.0;
  for (std::size_t r = 0; r < baseline_reps; ++r) {
    const auto pts = request_points(points_per_request, 40 + r);
    const auto t0 = std::chrono::steady_clock::now();
    const auto out = model.predict(theta, p.locs, p.z, pts, true);
    baseline_total += std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    if (out.mean.empty()) return 1;
  }
  const double baseline_per_request = baseline_total / static_cast<double>(baseline_reps);
  std::printf("%-34s %10.4f s/request %12.2f req/s\n", "baseline (factorize per call)",
              baseline_per_request, 1.0 / baseline_per_request);
  records.push_back({"baseline per-request seconds", n, baseline_per_request, 0.0});

  // --- serving path: factor once, then batched concurrent solves ------------
  serve::ModelCheckpoint ckpt;
  ckpt.kernel = "matern";
  ckpt.theta = theta;
  ckpt.config = cfg;
  ckpt.train_locs = p.locs;
  ckpt.z_train = p.z;
  {
    const auto t0 = std::chrono::steady_clock::now();
    ckpt.factor = model.factor_at(theta, p.locs);
    const double load_s = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    std::printf("%-34s %10.4f s (one-time)\n", "factorization at load", load_s);
    records.push_back({"factor once at load seconds", n, load_s, 0.0});
  }
  const auto loaded = serve::LoadedModel::from_checkpoint("bench", std::move(ckpt));

  double best_per_request = 1e300;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}}) {
    for (const std::size_t concurrency :
         {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
      serve::KrigingEngine engine(
          serve::EngineConfig{workers, requests + concurrency, 65536});

      std::vector<double> latencies(requests);
      std::atomic<std::size_t> next{0};
      const auto t0 = std::chrono::steady_clock::now();
      std::vector<std::thread> submitters;
      for (std::size_t c = 0; c < concurrency; ++c) {
        submitters.emplace_back([&] {
          for (std::size_t r = next.fetch_add(1); r < requests;
               r = next.fetch_add(1)) {
            const auto pts = request_points(points_per_request, 900 + r);
            const auto out = engine.submit(loaded, pts, true).get();
            latencies[r] = out.ok ? out.total_seconds : -1.0;
          }
        });
      }
      for (auto& t : submitters) t.join();
      const double wall = std::chrono::duration<double>(
          std::chrono::steady_clock::now() - t0).count();
      engine.drain();

      std::size_t failed = 0;
      for (const double l : latencies)
        if (l < 0) ++failed;
      if (failed > 0) std::printf("  !! %zu requests failed\n", failed);

      const double rps = static_cast<double>(requests) / wall;
      const double p50 = percentile(latencies, 0.50);
      const double p99 = percentile(latencies, 0.99);
      const double p999 = percentile(latencies, 0.999);
      const double per_request = wall / static_cast<double>(requests);
      best_per_request = std::min(best_per_request, per_request);

      char label[96];
      std::snprintf(label, sizeof label, "engine w=%zu c=%zu", workers, concurrency);
      std::printf("%-34s %10.2f req/s   p50 %8.2f ms   p99 %8.2f ms   p999 %8.2f ms\n",
                  label, rps, 1e3 * p50, 1e3 * p99, 1e3 * p999);
      records.push_back({std::string(label) + " req/s", n, wall, rps});
      records.push_back({std::string(label) + " p50 seconds", n, p50, 0.0});
      records.push_back({std::string(label) + " p99 seconds", n, p99, 0.0});
      records.push_back({std::string(label) + " p999 seconds", n, p999, 0.0});
    }
  }

  const double speedup = baseline_per_request / best_per_request;
  bench::print_rule();
  std::printf("cached-factor speedup per request: %.1fx %s\n", speedup,
              speedup >= 5.0 ? "(>= 5x target met)" : "(below 5x target!)");
  records.push_back({"speedup vs factorize-per-call", n, speedup, 0.0});

  const std::string json = bench::json_out_path(argc, argv);
  if (!json.empty()) bench::write_bench_json(json, records);
  return 0;
}
