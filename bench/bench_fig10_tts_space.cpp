// Fig. 10 reproduction: time-to-solution of the three Cholesky variants for
// Matérn 2D space across problem sizes, worker counts, and weak/medium/
// strong correlation.
//
// Expected shape (paper, up to 16K Fugaku nodes): MP+dense/TLR fastest,
// largest speedup for weak correlation and large n (up to 12x); MP dense a
// modest constant factor over dense FP64.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_utils.hpp"
#include "common/timer.hpp"
#include "core/model.hpp"

namespace {

using namespace gsx;
using namespace gsx::bench;

struct Timing {
  double seconds = 0.0;
  std::size_t footprint = 0;
};

Timing run_variant(core::ComputeVariant variant,
                   const std::vector<geostat::Location>& locs,
                   const std::vector<double>& z, double range, std::size_t workers) {
  const geostat::MaternCovariance proto(1.0, range, 0.5, 1e-6);
  core::ModelConfig cfg;
  cfg.variant = variant;
  cfg.tile_size = locs.size() >= 2048 ? 128 : 64;
  cfg.workers = workers;
  cfg.eps_target = 1e-8;
  cfg.tlr_tol = 1e-8;
  cfg.auto_band = true;
  core::GsxModel model(proto.clone(), cfg);
  core::EvalBreakdown bd;
  const auto v = model.evaluate(proto.params(), locs, z, &bd);
  Timing t;
  // Time-to-solution of the Cholesky stage (the paper's proxy): the
  // factorization task graph, excluding matrix generation.
  t.seconds = bd.factor.seconds;
  t.footprint = bd.footprint_bytes;
  if (!v.ok) t.seconds = -1.0;
  return t;
}

std::vector<BenchRecord> g_records;

void record(const std::string& name, std::size_t n, double seconds) {
  if (seconds <= 0.0) return;  // failed variant
  BenchRecord r;
  r.name = name;
  r.size = n;
  r.seconds = seconds;
  r.gflops = static_cast<double>(n) * static_cast<double>(n) *
             static_cast<double>(n) / 3.0 / seconds / 1e9;
  g_records.push_back(std::move(r));
}

}  // namespace

int main(int argc, char** argv) {
  print_header("Fig. 10 - Time-to-solution, Matérn 2D space (one MLE iteration proxy)");

  const std::vector<std::size_t> sizes = {scaled(1024), scaled(2048)};
  const std::size_t workers = 2;

  std::printf("\n%-14s %6s %8s | %12s %12s %12s | %9s %9s\n", "correlation", "n", "workers",
              "dense64 (s)", "MP (s)", "MP+TLR (s)", "MP spd", "TLR spd");
  auto run_row = [&](const CorrelationPreset& preset, std::size_t n) {
    const SpaceProblem p = make_space_problem(n, preset.range);
    const Timing dense =
        run_variant(core::ComputeVariant::DenseFP64, p.locs, p.z, preset.range, workers);
    const Timing mp =
        run_variant(core::ComputeVariant::MPDense, p.locs, p.z, preset.range, workers);
    const Timing tlr =
        run_variant(core::ComputeVariant::MPDenseTLR, p.locs, p.z, preset.range, workers);
    std::printf("%-14s %6zu %8zu | %12.4f %12.4f %12.4f | %8.2fx %8.2fx\n", preset.name, n,
                workers, dense.seconds, mp.seconds, tlr.seconds,
                dense.seconds / mp.seconds, dense.seconds / tlr.seconds);
    const std::string tag = std::string("fig10/") + preset.name + "/";
    record(tag + "dense64", n, dense.seconds);
    record(tag + "mp", n, mp.seconds);
    record(tag + "mp_tlr", n, tlr.seconds);
  };
  for (const auto& preset : correlation_presets())
    for (std::size_t n : sizes) run_row(preset, n);
  // The paper's sweet spot: largest n at weak correlation (up to 12x there).
  run_row(correlation_presets()[0], scaled(4096));

  // Strong-scaling slice: fixed problem, growing worker count (the paper's
  // node axis collapsed to the on-node worker pool).
  std::printf("\nStrong scaling at n=%zu, weak correlation:\n", scaled(1024));
  std::printf("%8s | %12s %12s %12s\n", "workers", "dense64 (s)", "MP (s)", "MP+TLR (s)");
  const SpaceProblem p = make_space_problem(scaled(1024), 0.03);
  for (std::size_t w : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const Timing dense =
        run_variant(core::ComputeVariant::DenseFP64, p.locs, p.z, 0.03, w);
    const Timing mp = run_variant(core::ComputeVariant::MPDense, p.locs, p.z, 0.03, w);
    const Timing tlr = run_variant(core::ComputeVariant::MPDenseTLR, p.locs, p.z, 0.03, w);
    std::printf("%8zu | %12.4f %12.4f %12.4f\n", w, dense.seconds, mp.seconds, tlr.seconds);
    const std::string tag = "fig10/strong-scaling/w=" + std::to_string(w) + "/";
    record(tag + "dense64", p.locs.size(), dense.seconds);
    record(tag + "mp", p.locs.size(), mp.seconds);
    record(tag + "mp_tlr", p.locs.size(), tlr.seconds);
  }
  std::printf(
      "\npaper reference: MP+dense/TLR up to 12x over dense FP64 at weak correlation on "
      "16K nodes; speedup shrinks toward strong correlation and grows with n.\n"
      "note: this host exposes a single physical core, so the worker sweep exercises the "
      "runtime's dispatch rather than true strong scaling.\n");
  const std::string json = json_out_path(argc, argv);
  if (!json.empty()) write_bench_json(json, g_records);
  return 0;
}
