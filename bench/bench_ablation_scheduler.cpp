// Ablation: runtime scheduling policies on the MP Cholesky task DAG.
//
// The paper leans on PaRSEC's dynamic scheduling to absorb the load
// imbalance that heterogeneous tiles (dense/TLR x FP64/32/16) create.
// This bench compares the ready-queue policies of our runtime — FIFO,
// LIFO, priority (panel-first), and work stealing — on the same DAG, and
// reports makespan, parallel efficiency, and DAG statistics.
#include <cstdio>

#include "bench_utils.hpp"
#include "cholesky/factorize.hpp"
#include "geostat/assemble.hpp"
#include "runtime/trace_io.hpp"

namespace {

using namespace gsx;
using namespace gsx::bench;

tile::SymTileMatrix make_matrix(std::size_t n, std::size_t ts) {
  Rng rng(7);
  auto locs = geostat::perturbed_grid_locations(n, rng);
  geostat::sort_morton(locs);
  const geostat::MaternCovariance model(1.0, 0.05, 0.5, 1e-6);
  tile::SymTileMatrix a(n, ts);
  geostat::fill_covariance_tiles(a, model, locs, 2);
  cholesky::PrecisionPolicy policy;
  policy.rule = cholesky::PrecisionRule::AdaptiveFrobenius;
  cholesky::apply_precision_policy(a, policy);
  return a;
}

}  // namespace

int main() {
  const std::size_t n = scaled(1024);
  const std::size_t ts = 64;
  const std::size_t workers = 3;
  print_header("Ablation - scheduler policies on the MP Cholesky DAG (n=" +
               std::to_string(n) + ", tile " + std::to_string(ts) + ", " +
               std::to_string(workers) + " workers)");

  std::printf("\n%-14s | %10s %10s %12s %8s %8s\n", "policy", "time (s)", "eff (%)",
              "crit path", "tasks", "steals");
  for (auto [policy, name] : {std::pair{rt::SchedPolicy::Fifo, "FIFO"},
                              std::pair{rt::SchedPolicy::Lifo, "LIFO"},
                              std::pair{rt::SchedPolicy::Priority, "priority"},
                              std::pair{rt::SchedPolicy::WorkStealing, "work-steal"}}) {
    auto a = make_matrix(n, ts);
    cholesky::FactorOptions opts;
    opts.workers = workers;
    opts.sched = policy;
    const auto rep = cholesky::tile_cholesky_dense(a, opts);
    std::printf("%-14s | %10.4f %10.1f %12zu %8zu %8zu\n", name, rep.seconds,
                100.0 * rep.graph.parallel_efficiency(workers),
                rep.graph.critical_path_tasks, rep.graph.num_tasks, rep.graph.steals);
  }
  std::printf(
      "\nall policies execute the same DAG to the same result; differences are pure "
      "scheduling (note: a single physical core bounds the observable spread).\n");
  return 0;
}
