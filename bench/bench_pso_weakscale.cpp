// Section VI-D reproduction: weak scaling of the parallel MLE training via
// particle swarm optimization — independent log-likelihood evaluations per
// particle, dispatched concurrently (the paper's path to full-Fugaku scale).
#include <cstdio>

#include "bench_utils.hpp"
#include "common/timer.hpp"
#include "core/model.hpp"

int main() {
  using namespace gsx;
  using namespace gsx::bench;

  const std::size_t n = scaled(256);
  print_header("PSO weak scaling - parallel log-likelihood evaluations (n=" +
               std::to_string(n) + " per evaluation)");

  const SpaceProblem p = make_space_problem(n, 0.1);
  const geostat::MaternCovariance proto(1.0, 0.1, 0.5, 1e-6);

  std::printf("\n%8s %8s | %12s %14s %12s\n", "workers", "swarm", "time (s)",
              "evals total", "evals/s");
  double base_rate = 0.0;
  for (std::size_t w : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    core::ModelConfig cfg;
    cfg.variant = core::ComputeVariant::DenseFP64;
    cfg.tile_size = 64;
    cfg.workers = 1;  // inner Cholesky sequential: parallelism across particles
    cfg.optimizer = core::OptimizerKind::ParticleSwarm;
    cfg.pso.workers = w;
    cfg.pso.swarm_size = 4 * w;  // weak scaling: particles per worker constant
    cfg.pso.max_iters = 6;
    cfg.pso.stall_iters = 100;  // run all iterations
    core::GsxModel model(proto.clone(), cfg);

    Timer t;
    const core::FitResult fit = model.fit(p.locs, p.z);
    const double secs = t.seconds();
    const double rate = static_cast<double>(fit.evaluations) / secs;
    if (w == 1) base_rate = rate;
    std::printf("%8zu %8zu | %12.3f %14zu %12.2f  (efficiency %.0f%%)\n", w,
                4 * w, secs, fit.evaluations, rate,
                100.0 * rate / (base_rate * static_cast<double>(w)));
  }
  std::printf(
      "\npaper reference: PSO particles evaluate embarrassingly parallel MLEs with loose "
      "per-iteration synchronization, extending strong-scaled Cholesky to full Fugaku.\n"
      "note: on a single physical core, oversubscribed workers cannot exceed 100%% "
      "aggregate efficiency; the table demonstrates the dispatch path.\n");
  return 0;
}
