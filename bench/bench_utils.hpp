// Shared helpers for the paper-reproduction benchmark harness.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "geostat/covariance.hpp"
#include "geostat/field.hpp"
#include "geostat/locations.hpp"

namespace gsx::bench {

/// Environment-tunable scale knob: GSX_BENCH_SCALE=0.5 halves workloads,
/// =4 quadruples them. Defaults to 1 (a few seconds per binary on one core).
inline double bench_scale() {
  if (const char* s = std::getenv("GSX_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0) return v;
  }
  return 1.0;
}

inline std::size_t scaled(std::size_t base) {
  const double v = static_cast<double>(base) * bench_scale();
  return static_cast<std::size_t>(v < 1 ? 1 : v);
}

/// Correlation presets matching the paper's weak/medium/strong settings
/// (theta_1 = 0.03 / 0.1 / 0.3 in Fig. 6 and Figs. 9-10).
struct CorrelationPreset {
  const char* name;
  double range;
};

inline const std::vector<CorrelationPreset>& correlation_presets() {
  static const std::vector<CorrelationPreset> presets = {
      {"weak (0.03)", 0.03}, {"medium (0.1)", 0.1}, {"strong (0.3)", 0.3}};
  return presets;
}

struct SpaceProblem {
  std::vector<geostat::Location> locs;
  std::vector<double> z;
};

/// Morton-sorted Matérn 2D problem with the given correlation range.
inline SpaceProblem make_space_problem(std::size_t n, double range, double smoothness = 0.5,
                                       std::uint64_t seed = 7) {
  Rng rng(seed);
  SpaceProblem p;
  p.locs = geostat::perturbed_grid_locations(n, rng);
  geostat::sort_morton(p.locs);
  const geostat::MaternCovariance model(1.0, range, smoothness, 1e-6);
  p.z = geostat::simulate_grf(model, p.locs, rng);
  return p;
}

/// Space-time Gneiting problem (time-major layout).
inline SpaceProblem make_spacetime_problem(std::size_t spatial_n, std::size_t slots,
                                           double range_s, double beta,
                                           std::uint64_t seed = 9) {
  Rng rng(seed);
  auto spatial = geostat::perturbed_grid_locations(spatial_n, rng);
  geostat::sort_morton(spatial);
  SpaceProblem p;
  p.locs = geostat::replicate_in_time(spatial, slots, 1.0);
  const geostat::GneitingCovariance model(1.0, range_s, 0.5, 0.5, 0.9, beta, 1e-6);
  p.z = geostat::simulate_grf(model, p.locs, rng);
  return p;
}

// ---------------------------------------------------------------------------
// Machine-readable results: every bench binary can mirror its table to a
// JSON file ("gsx-bench-v1") for regression tracking across commits.

struct BenchRecord {
  std::string name;
  std::size_t size = 0;   ///< problem size n (0 when not size-indexed)
  double seconds = 0.0;   ///< wall time per repetition
  double gflops = 0.0;    ///< effective rate; 0 when not meaningful
};

/// Output path from `--json FILE` in leftover argv (framework flags already
/// consumed), or the GSX_BENCH_JSON environment variable. Empty = no JSON.
inline std::string json_out_path(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  if (const char* s = std::getenv("GSX_BENCH_JSON")) return s;
  return {};
}

/// `analytics` (optional) is a pre-rendered JSON object — typically
/// obs::analytics_json() — embedded verbatim as an "analytics" member so a
/// bench file carries its own execution-analytics summary.
inline void write_bench_json(const std::string& path,
                             const std::vector<BenchRecord>& records,
                             const std::string& analytics = {}) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"schema\": \"gsx-bench-v1\",\n");
  if (!analytics.empty()) std::fprintf(f, "  \"analytics\": %s,\n", analytics.c_str());
  std::fprintf(f, "  \"records\": [");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::string name;
    name.reserve(r.name.size());
    for (char c : r.name) {
      if (c == '"' || c == '\\') name += '\\';
      name += c;
    }
    std::fprintf(f,
                 "%s\n    {\"name\": \"%s\", \"size\": %zu, \"seconds\": %.9g, "
                 "\"gflops\": %.9g}",
                 i ? "," : "", name.c_str(), r.size, r.seconds, r.gflops);
  }
  std::fprintf(f, "%s]\n}\n", records.empty() ? "" : "\n  ");
  std::fclose(f);
  std::printf("bench: wrote %s (%zu records)\n", path.c_str(), records.size());
}

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void print_header(const std::string& title) {
  std::printf("\n");
  print_rule();
  std::printf("%s\n", title.c_str());
  print_rule();
}

}  // namespace gsx::bench
