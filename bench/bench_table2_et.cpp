// Table II reproduction: space-time MLE + prediction on the (synthetic)
// evapotranspiration dataset for the three compute variants, including the
// paper's preprocessing pipeline (climatology removal + per-month linear
// detrending).
//
// Paper (83K locations x 12 months, Central Asia): strong spatial
// correlation; the three variants agree on all six Gneiting parameters and
// MSPE (0.9345 / 0.9348 / 0.9428); the nonseparability parameter ~0.19.
#include <cstdio>

#include "bench_utils.hpp"
#include "core/model.hpp"
#include "data/synthetic.hpp"
#include "mathx/stats.hpp"

int main() {
  using namespace gsx;
  using namespace gsx::bench;

  data::EtConfig dcfg;
  dcfg.spatial_n = scaled(72);
  dcfg.months = 8;
  dcfg.history_years = 12;
  const data::SpaceTimeDataset ds = data::make_et_like(dcfg);
  const std::vector<double> residual = data::detrend_et(ds);

  // Hold out a random 1/8 of the space-time points for prediction.
  data::Dataset all;
  all.locations = ds.locations;
  all.values = residual;
  Rng split_rng(3);
  auto split = data::split_train_test(all, 7.0 / 8.0, split_rng);
  data::sort_morton(split.train, /*use_time=*/true);

  print_header("Table II - Evapotranspiration(-like) space-time dataset: " +
               std::to_string(split.train.size()) + " training / " +
               std::to_string(split.test.size()) + " testing space-time locations");
  std::printf(
      "ground truth: variance=%.3f range-s=%.3f smooth-s=%.3f range-t=%.3f "
      "smooth-t=%.3f beta=%.3f  (preprocessed: climatology + monthly linear detrend)\n",
      dcfg.variance, dcfg.range_s, dcfg.smooth_s, dcfg.range_t, dcfg.smooth_t, dcfg.beta);

  std::printf("\n%-14s %10s %10s %10s %10s %10s %10s %14s %9s\n", "Approach", "Variance",
              "Range-s", "Smooth-s", "Range-t", "Smooth-t", "Nonsep", "Log-Lik", "MSPE");

  for (core::ComputeVariant variant :
       {core::ComputeVariant::DenseFP64, core::ComputeVariant::MPDense,
        core::ComputeVariant::MPDenseTLR}) {
    // Start at a perturbed point (optimizing all six parameters).
    geostat::GneitingCovariance proto(0.7, 0.4, 0.5, 0.3, 0.7, 0.4, dcfg.nugget);
    core::ModelConfig cfg;
    cfg.variant = variant;
    cfg.tile_size = 64;
    cfg.workers = 2;
    cfg.eps_target = 1e-8;
    cfg.tlr_tol = 1e-8;
    cfg.auto_band = true;
    cfg.nm.max_evals = 180;
    core::GsxModel model(proto.clone(), cfg);

    const core::FitResult fit = model.fit(split.train.locations, split.train.values);
    const geostat::KrigingResult pred = model.predict(
        fit.theta, split.train.locations, split.train.values, split.test.locations, false);
    const double mspe = mathx::mspe(pred.mean, split.test.values);

    std::printf("%-14s %10.4f %10.4f %10.4f %10.4f %10.4f %10.4f %14.2f %9.4f\n",
                core::variant_name(variant), fit.theta[0], fit.theta[1], fit.theta[2],
                fit.theta[3], fit.theta[4], fit.theta[5], fit.loglik, mspe);
  }

  std::printf(
      "\npaper reference (1M space-time locations): all variants agree; MSPE 0.9345 / "
      "0.9348 / 0.9428; nonseparability ~0.186 (dropping it would hurt prediction).\n");
  return 0;
}
