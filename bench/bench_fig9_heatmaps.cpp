// Fig. 9 reproduction: adaptive decision heat maps (precision + structure)
// for weak vs strong correlation, with memory-footprint accounting.
//
// Expected shape (paper, Matérn 2D at n=1M, tile 2700): weak correlation
// yields many more FP16/FP32 and low-rank tiles than strong correlation;
// MF(MP+dense/TLR) < MF(MP+dense) < MF(dense FP64), up to 79% reduction.
#include <cstdio>

#include "bench_utils.hpp"
#include "core/model.hpp"

namespace {

using namespace gsx;
using namespace gsx::bench;

void show(const char* title, const tile::SymTileMatrix& a, std::size_t dense_bytes) {
  std::printf("\n%s\n", title);
  for (const auto& row : a.decision_map()) std::printf("  %s\n", row.c_str());
  const auto counts = a.decision_counts();
  std::printf("  tiles:");
  for (const auto& [code, cnt] : counts) std::printf(" %c=%zu", code, cnt);
  const std::size_t mf = a.footprint_bytes();
  std::printf("\n  memory footprint: %.2f MiB (dense FP64: %.2f MiB, reduction %.0f%%)\n",
              mf / 1048576.0, dense_bytes / 1048576.0,
              100.0 * (1.0 - static_cast<double>(mf) / static_cast<double>(dense_bytes)));
}

}  // namespace

int main() {
  const std::size_t n = scaled(1024);
  const std::size_t ts = 64;

  print_header(
      "Fig. 9 - Adaptive decision maps, Matérn 2D space, n=" + std::to_string(n) +
      ", tile " + std::to_string(ts) +
      "  (codes: D=FP64 S=FP32 H=FP16 dense; L=FP64 l=FP32 low-rank)");

  for (const auto& preset : {CorrelationPreset{"Weak correlation (0.03)", 0.03},
                             CorrelationPreset{"Strong correlation (0.3)", 0.3}}) {
    Rng rng(11);
    auto locs = geostat::perturbed_grid_locations(n, rng);
    geostat::sort_morton(locs);
    const geostat::MaternCovariance proto(1.0, preset.range, 0.5, 1e-6);
    const std::vector<double> theta = proto.params();

    std::printf("\n==== %s ====\n", preset.name);

    core::ModelConfig mp_cfg;
    mp_cfg.variant = core::ComputeVariant::MPDense;
    mp_cfg.tile_size = ts;
    mp_cfg.eps_target = 1e-8;
    core::GsxModel mp(proto.clone(), mp_cfg);
    core::EvalBreakdown bd;
    const auto mp_matrix = mp.build_decision_matrix(theta, locs, &bd);
    show("MP+dense (adaptive Frobenius rule):", mp_matrix, bd.dense_fp64_bytes);

    core::ModelConfig tlr_cfg = mp_cfg;
    tlr_cfg.variant = core::ComputeVariant::MPDenseTLR;
    tlr_cfg.auto_band = true;
    core::GsxModel tlr(proto.clone(), tlr_cfg);
    core::EvalBreakdown bd2;
    const auto tlr_matrix = tlr.build_decision_matrix(theta, locs, &bd2);
    char title[128];
    std::snprintf(title, sizeof title,
                  "MP+dense/TLR (tol 1e-8, auto band_size_dense=%zu):",
                  bd2.band_size_dense);
    show(title, tlr_matrix, bd2.dense_fp64_bytes);
  }
  std::printf(
      "\npaper reference: MF reduction up to 63%% (MP+dense) / 79%% (MP+dense/TLR) at "
      "n=1M; weak correlation demotes/compresses far more tiles than strong.\n");
  return 0;
}
