// Fig. 8 reproduction: GEMM kernel throughput across precisions — DGEMM,
// SGEMM, and the FP16-storage/FP32-accumulate SHGEMM (the BLIS kernel the
// paper borrowed, here in software).
//
// Expected shape: SGEMM above DGEMM; SHGEMM below SGEMM (the conversion
// overhead the paper also observed, falling back to SGEMM for performance).
// The *_ref variants time the la::ref loops the packed micro-kernel path
// replaced, so the JSON carries the measured speedup baseline.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>

#include "bench_utils.hpp"
#include "common/rng.hpp"
#include "la/autotune.hpp"
#include "la/blas.hpp"
#include "la/convert.hpp"
#include "la/gemm_kernel.hpp"
#include "la/half_blas.hpp"
#include "la/matrix.hpp"

namespace {

using namespace gsx;

template <typename T>
la::Matrix<T> random_mat(std::size_t n, Rng& rng) {
  la::Matrix<T> m(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) {
      if constexpr (std::is_same_v<T, half>) {
        m(i, j) = half(rng.normal());
      } else if constexpr (std::is_same_v<T, bfloat16>) {
        m(i, j) = bfloat16(static_cast<float>(rng.normal()));
      } else {
        m(i, j) = static_cast<T>(rng.normal());
      }
    }
  return m;
}

void BM_dgemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const auto a = random_mat<double>(n, rng);
  const auto b = random_mat<double>(n, rng);
  la::Matrix<double> c(n, n);
  for (auto _ : state) {
    la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, -1.0, a.cview(), b.cview(), 1.0,
                     c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      2.0 * n * n * n * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}

void BM_sgemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const auto a = random_mat<float>(n, rng);
  const auto b = random_mat<float>(n, rng);
  la::Matrix<float> c(n, n);
  for (auto _ : state) {
    la::gemm<float>(la::Trans::NoTrans, la::Trans::Trans, -1.0f, a.cview(), b.cview(), 1.0f,
                    c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      2.0 * n * n * n * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}

void BM_shgemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const auto a = random_mat<half>(n, rng);
  const auto b = random_mat<half>(n, rng);
  la::Matrix<float> c(n, n);
  for (auto _ : state) {
    la::shgemm(la::Trans::NoTrans, la::Trans::Trans, -1.0f, a.cview(), b.cview(), 1.0f,
               c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      2.0 * n * n * n * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}

void BM_hgemm_fp16_store(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  const auto a = random_mat<half>(n, rng);
  const auto b = random_mat<half>(n, rng);
  la::Matrix<half> c(n, n);
  for (auto _ : state) {
    la::hgemm(la::Trans::NoTrans, la::Trans::Trans, -1.0f, a.cview(), b.cview(), 1.0f,
              c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      2.0 * n * n * n * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}

void BM_sbgemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  const auto a = random_mat<bfloat16>(n, rng);
  const auto b = random_mat<bfloat16>(n, rng);
  la::Matrix<float> c(n, n);
  for (auto _ : state) {
    la::sbgemm(la::Trans::NoTrans, la::Trans::Trans, -1.0f, a.cview(), b.cview(), 1.0f,
               c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      2.0 * n * n * n * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}

void BM_bgemm_bf16_store(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  const auto a = random_mat<bfloat16>(n, rng);
  const auto b = random_mat<bfloat16>(n, rng);
  la::Matrix<bfloat16> c(n, n);
  for (auto _ : state) {
    la::bgemm(la::Trans::NoTrans, la::Trans::Trans, -1.0f, a.cview(), b.cview(), 1.0f,
              c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      2.0 * n * n * n * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}

// ------------------------------------------------------------- batched ops
// The trailing-update micro-batch shape of the tile Cholesky: `kBatch`
// same-size GEMMs sharing one B operand, issued as a single batched call
// (the packed op(B) panel is re-used across the whole batch).

constexpr std::size_t kBatch = 16;

void BM_dgemm_batched(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const auto b = random_mat<double>(n, rng);
  std::vector<la::Matrix<double>> as, cs;
  std::vector<la::GemmBatchItem<double>> items(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    as.push_back(random_mat<double>(n, rng));
    cs.push_back(random_mat<double>(n, rng));
  }
  for (std::size_t i = 0; i < kBatch; ++i)
    items[i] = {as[i].cview(), b.cview(), cs[i].view()};
  for (auto _ : state) {
    la::gemm_batch<double>(la::Trans::NoTrans, la::Trans::Trans, -1.0, items.data(),
                           kBatch, 1.0);
    benchmark::DoNotOptimize(cs[0].data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      2.0 * n * n * n * kBatch * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}

void BM_sgemm_batched(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const auto b = random_mat<float>(n, rng);
  std::vector<la::Matrix<float>> as, cs;
  std::vector<la::GemmBatchItem<float>> items(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    as.push_back(random_mat<float>(n, rng));
    cs.push_back(random_mat<float>(n, rng));
  }
  for (std::size_t i = 0; i < kBatch; ++i)
    items[i] = {as[i].cview(), b.cview(), cs[i].view()};
  for (auto _ : state) {
    la::gemm_batch<float>(la::Trans::NoTrans, la::Trans::Trans, -1.0f, items.data(),
                          kBatch, 1.0f);
    benchmark::DoNotOptimize(cs[0].data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      2.0 * n * n * n * kBatch * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}

void BM_shgemm_batched(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const auto b = random_mat<half>(n, rng);
  std::vector<la::Matrix<half>> as;
  std::vector<la::Matrix<float>> cs;
  std::vector<la::GemmBatchItem<half, float>> items(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    as.push_back(random_mat<half>(n, rng));
    cs.push_back(random_mat<float>(n, rng));
  }
  for (std::size_t i = 0; i < kBatch; ++i)
    items[i] = {as[i].cview(), b.cview(), cs[i].view()};
  for (auto _ : state) {
    la::shgemm_batch(la::Trans::NoTrans, la::Trans::Trans, -1.0f, items.data(), kBatch,
                     1.0f);
    benchmark::DoNotOptimize(cs[0].data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      2.0 * n * n * n * kBatch * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}

void BM_hgemm_batched(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  const auto b = random_mat<half>(n, rng);
  std::vector<la::Matrix<half>> as, cs;
  std::vector<la::Gemm16BatchItem<half>> items(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    as.push_back(random_mat<half>(n, rng));
    cs.push_back(random_mat<half>(n, rng));
  }
  for (std::size_t i = 0; i < kBatch; ++i)
    items[i] = {as[i].cview(), b.cview(), cs[i].view()};
  for (auto _ : state) {
    la::hgemm_batch(la::Trans::NoTrans, la::Trans::Trans, -1.0f, items.data(), kBatch,
                    1.0f);
    benchmark::DoNotOptimize(cs[0].data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      2.0 * n * n * n * kBatch * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}

void BM_bgemm_batched(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  const auto b = random_mat<bfloat16>(n, rng);
  std::vector<la::Matrix<bfloat16>> as, cs;
  std::vector<la::Gemm16BatchItem<bfloat16>> items(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    as.push_back(random_mat<bfloat16>(n, rng));
    cs.push_back(random_mat<bfloat16>(n, rng));
  }
  for (std::size_t i = 0; i < kBatch; ++i)
    items[i] = {as[i].cview(), b.cview(), cs[i].view()};
  for (auto _ : state) {
    la::bgemm_batch(la::Trans::NoTrans, la::Trans::Trans, -1.0f, items.data(), kBatch,
                    1.0f);
    benchmark::DoNotOptimize(cs[0].data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      2.0 * n * n * n * kBatch * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}

void BM_dgemm_ref(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const auto a = random_mat<double>(n, rng);
  const auto b = random_mat<double>(n, rng);
  la::Matrix<double> c(n, n);
  for (auto _ : state) {
    la::ref::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, -1.0, a.cview(), b.cview(),
                          1.0, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      2.0 * n * n * n * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}

void BM_sgemm_ref(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const auto a = random_mat<float>(n, rng);
  const auto b = random_mat<float>(n, rng);
  la::Matrix<float> c(n, n);
  for (auto _ : state) {
    la::ref::gemm<float>(la::Trans::NoTrans, la::Trans::Trans, -1.0f, a.cview(), b.cview(),
                         1.0f, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      2.0 * n * n * n * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}

#define GSX_FIG8_SIZES ->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond)
BENCHMARK(BM_dgemm) GSX_FIG8_SIZES;
BENCHMARK(BM_sgemm) GSX_FIG8_SIZES;
BENCHMARK(BM_shgemm) GSX_FIG8_SIZES;
BENCHMARK(BM_hgemm_fp16_store) GSX_FIG8_SIZES;
BENCHMARK(BM_sbgemm) GSX_FIG8_SIZES;
BENCHMARK(BM_bgemm_bf16_store) GSX_FIG8_SIZES;
BENCHMARK(BM_dgemm_batched) GSX_FIG8_SIZES;
BENCHMARK(BM_sgemm_batched) GSX_FIG8_SIZES;
BENCHMARK(BM_shgemm_batched) GSX_FIG8_SIZES;
BENCHMARK(BM_hgemm_batched) GSX_FIG8_SIZES;
BENCHMARK(BM_bgemm_batched) GSX_FIG8_SIZES;
BENCHMARK(BM_dgemm_ref) GSX_FIG8_SIZES;
BENCHMARK(BM_sgemm_ref) GSX_FIG8_SIZES;

/// Console output as usual, plus a BenchRecord per run for --json. The size
/// is recovered from the "BM_name/123" run name.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  std::vector<bench::BenchRecord> records;

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      if (r.error_occurred) continue;
      bench::BenchRecord rec;
      rec.name = r.benchmark_name();
      const auto slash = rec.name.rfind('/');
      if (slash != std::string::npos)
        rec.size = static_cast<std::size_t>(std::atoll(rec.name.c_str() + slash + 1));
      rec.seconds = (r.iterations > 0)
                        ? r.real_accumulated_time / static_cast<double>(r.iterations)
                        : 0.0;
      const auto it = r.counters.find("GFlop/s");
      // Rate counters are already normalized by elapsed time at this point.
      if (it != r.counters.end()) rec.gflops = it->second.value;
      records.push_back(std::move(rec));
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

/// Derived records: packed-path throughput as a percent of the measured
/// reference baseline at the same size (stored in `gflops`; `seconds` = 0).
void append_pct_of_ref(std::vector<bench::BenchRecord>& records) {
  const std::pair<const char*, const char*> pairs[] = {
      {"BM_dgemm/", "BM_dgemm_ref/"}, {"BM_sgemm/", "BM_sgemm_ref/"}};
  std::vector<bench::BenchRecord> derived;
  for (const auto& [fast_prefix, ref_prefix] : pairs) {
    for (const auto& fast : records) {
      if (fast.name.rfind(fast_prefix, 0) != 0) continue;
      for (const auto& ref : records) {
        if (ref.name.rfind(ref_prefix, 0) == 0 && ref.size == fast.size &&
            ref.gflops > 0.0) {
          bench::BenchRecord rec;
          rec.name = std::string(fast_prefix) + "pct_of_ref";
          rec.size = fast.size;
          rec.gflops = 100.0 * fast.gflops / ref.gflops;
          derived.push_back(std::move(rec));
        }
      }
    }
  }
  records.insert(records.end(), derived.begin(), derived.end());
}

/// Derived records: batched throughput as a percent of the looped per-op
/// call at the same size — the small-tile batching win.
void append_batch_speedup(std::vector<bench::BenchRecord>& records) {
  const std::pair<const char*, const char*> pairs[] = {
      {"BM_dgemm_batched/", "BM_dgemm/"},
      {"BM_sgemm_batched/", "BM_sgemm/"},
      {"BM_shgemm_batched/", "BM_shgemm/"},
      {"BM_hgemm_batched/", "BM_hgemm_fp16_store/"},
      {"BM_bgemm_batched/", "BM_bgemm_bf16_store/"}};
  std::vector<bench::BenchRecord> derived;
  for (const auto& [batched_prefix, loop_prefix] : pairs) {
    for (const auto& batched : records) {
      if (batched.name.rfind(batched_prefix, 0) != 0 ||
          batched.name.find("speedup") != std::string::npos)
        continue;
      for (const auto& loop : records) {
        if (loop.name.find("pct_of") != std::string::npos) continue;
        if (loop.name.rfind(loop_prefix, 0) == 0 && loop.size == batched.size &&
            loop.gflops > 0.0) {
          bench::BenchRecord rec;
          rec.name = std::string(batched_prefix) + "speedup_x100";
          rec.size = batched.size;
          rec.gflops = 100.0 * batched.gflops / loop.gflops;
          derived.push_back(std::move(rec));
        }
      }
    }
  }
  records.insert(records.end(), derived.begin(), derived.end());
}

/// Derived records: throughput as a percent of the ISA's theoretical peak at
/// the measured clock (the achieved-vs-peak framing gsx_tune reports).
void append_pct_of_peak(std::vector<bench::BenchRecord>& records) {
  const double ghz = gsx::la::measure_clock_ghz();
  const std::pair<const char*, gsx::Precision> prefixes[] = {
      {"BM_dgemm/", gsx::Precision::FP64},
      {"BM_dgemm_batched/", gsx::Precision::FP64},
      {"BM_sgemm/", gsx::Precision::FP32},
      {"BM_sgemm_batched/", gsx::Precision::FP32},
      {"BM_shgemm/", gsx::Precision::FP16},
      {"BM_shgemm_batched/", gsx::Precision::FP16},
      {"BM_sbgemm/", gsx::Precision::BF16}};
  std::vector<bench::BenchRecord> derived;
  for (const auto& [prefix, precision] : prefixes) {
    const double peak = gsx::la::gemm_peak_gflops(precision, ghz);
    if (peak <= 0.0) continue;
    for (const auto& r : records) {
      if (r.name.rfind(prefix, 0) != 0 || r.gflops <= 0.0) continue;
      if (r.name.find("pct_of") != std::string::npos ||
          r.name.find("speedup") != std::string::npos)
        continue;
      bench::BenchRecord rec;
      rec.name = std::string(prefix) + "pct_of_peak";
      rec.size = r.size;
      rec.gflops = 100.0 * r.gflops / peak;
      derived.push_back(std::move(rec));
    }
  }
  records.insert(records.end(), derived.begin(), derived.end());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const std::string json = bench::json_out_path(argc, argv);
  std::printf("gemm kernel isa: %s\n", gsx::la::gemm_kernel_isa());
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!json.empty()) {
    append_pct_of_ref(reporter.records);
    append_batch_speedup(reporter.records);
    append_pct_of_peak(reporter.records);
    bench::write_bench_json(json, reporter.records);
  }
  benchmark::Shutdown();
  return 0;
}
