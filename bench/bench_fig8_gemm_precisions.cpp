// Fig. 8 reproduction: GEMM kernel throughput across precisions — DGEMM,
// SGEMM, and the FP16-storage/FP32-accumulate SHGEMM (the BLIS kernel the
// paper borrowed, here in software).
//
// Expected shape: SGEMM above DGEMM; SHGEMM below SGEMM (the conversion
// overhead the paper also observed, falling back to SGEMM for performance).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "la/blas.hpp"
#include "la/convert.hpp"
#include "la/half_blas.hpp"
#include "la/matrix.hpp"

namespace {

using namespace gsx;

template <typename T>
la::Matrix<T> random_mat(std::size_t n, Rng& rng) {
  la::Matrix<T> m(n, n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) {
      if constexpr (std::is_same_v<T, half>) {
        m(i, j) = half(rng.normal());
      } else {
        m(i, j) = static_cast<T>(rng.normal());
      }
    }
  return m;
}

void BM_dgemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const auto a = random_mat<double>(n, rng);
  const auto b = random_mat<double>(n, rng);
  la::Matrix<double> c(n, n);
  for (auto _ : state) {
    la::gemm<double>(la::Trans::NoTrans, la::Trans::Trans, -1.0, a.cview(), b.cview(), 1.0,
                     c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      2.0 * n * n * n * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}

void BM_sgemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const auto a = random_mat<float>(n, rng);
  const auto b = random_mat<float>(n, rng);
  la::Matrix<float> c(n, n);
  for (auto _ : state) {
    la::gemm<float>(la::Trans::NoTrans, la::Trans::Trans, -1.0f, a.cview(), b.cview(), 1.0f,
                    c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      2.0 * n * n * n * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}

void BM_shgemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const auto a = random_mat<half>(n, rng);
  const auto b = random_mat<half>(n, rng);
  la::Matrix<float> c(n, n);
  for (auto _ : state) {
    la::shgemm(la::Trans::NoTrans, la::Trans::Trans, -1.0f, a.cview(), b.cview(), 1.0f,
               c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      2.0 * n * n * n * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}

void BM_hgemm_fp16_store(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  const auto a = random_mat<half>(n, rng);
  const auto b = random_mat<half>(n, rng);
  la::Matrix<half> c(n, n);
  for (auto _ : state) {
    la::hgemm(la::Trans::NoTrans, la::Trans::Trans, -1.0f, a.cview(), b.cview(), 1.0f,
              c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      2.0 * n * n * n * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}

BENCHMARK(BM_dgemm)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_sgemm)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_shgemm)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_hgemm_fp16_store)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
