// Fig. 7 reproduction: mixed-precision tile Cholesky throughput by precision
// configuration (paper: 1024 Fugaku nodes, tile 800; here: one node, the
// worker pool, a Matérn covariance matrix).
//
// Expected shape: FP64 < band FP64/FP32 < band FP64/FP32/FP16 in effective
// Gflop/s; the adaptive (Frobenius) configuration lands between, depending
// on the correlation strength.
#include <benchmark/benchmark.h>

#include "bench_utils.hpp"
#include "cholesky/factorize.hpp"
#include "cholesky/precision_policy.hpp"
#include "geostat/assemble.hpp"
#include "geostat/covariance.hpp"
#include "geostat/locations.hpp"
#include "tile/sym_tile_matrix.hpp"

namespace {

using namespace gsx;

struct Problem {
  std::vector<geostat::Location> locs;
};

const Problem& problem(std::size_t n) {
  static Problem p = [n] {
    Problem q;
    Rng rng(5);
    q.locs = geostat::perturbed_grid_locations(n, rng);
    geostat::sort_morton(q.locs);
    return q;
  }();
  return p;
}

constexpr std::size_t kN = 512;
constexpr std::size_t kTs = 64;

void run_variant(benchmark::State& state, cholesky::PrecisionRule rule,
                 cholesky::BandConfig band, bool allow_fp16) {
  const auto& prob = problem(kN);
  const geostat::MaternCovariance model(1.0, 0.1, 0.5, 1e-6);
  const auto workers = static_cast<std::size_t>(state.range(0));

  for (auto _ : state) {
    state.PauseTiming();
    tile::SymTileMatrix a(kN, kTs);
    geostat::fill_covariance_tiles(a, model, prob.locs, workers);
    cholesky::PrecisionPolicy policy;
    policy.rule = rule;
    policy.band = band;
    policy.eps_target = 1e-8;
    policy.allow_fp16 = allow_fp16;
    cholesky::apply_precision_policy(a, policy);
    state.ResumeTiming();

    cholesky::FactorOptions opts;
    opts.workers = workers;
    const auto rep = cholesky::tile_cholesky_dense(a, opts);
    if (rep.info != 0) state.SkipWithError("non-SPD");
  }
  const double flops = static_cast<double>(kN) * kN * kN / 3.0;
  state.counters["GFlop/s"] =
      benchmark::Counter(flops * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}

void BM_dense_fp64(benchmark::State& state) {
  run_variant(state, cholesky::PrecisionRule::AllFP64, {}, false);
}
void BM_band_fp64_fp32(benchmark::State& state) {
  run_variant(state, cholesky::PrecisionRule::Band, cholesky::BandConfig{2, 1000000},
              false);
}
void BM_band_fp64_fp32_fp16(benchmark::State& state) {
  run_variant(state, cholesky::PrecisionRule::Band, cholesky::BandConfig{2, 4}, true);
}
void BM_adaptive_frobenius(benchmark::State& state) {
  run_variant(state, cholesky::PrecisionRule::AdaptiveFrobenius, {}, true);
}

BENCHMARK(BM_dense_fp64)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_band_fp64_fp32)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_band_fp64_fp32_fp16)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_adaptive_frobenius)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()->Unit(benchmark::kMillisecond);

/// Console output as usual, plus a BenchRecord per run for --json.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  std::vector<bench::BenchRecord> records;

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      if (r.error_occurred) continue;
      bench::BenchRecord rec;
      rec.name = r.benchmark_name();
      rec.size = kN;
      rec.seconds = (r.iterations > 0)
                        ? r.real_accumulated_time / static_cast<double>(r.iterations)
                        : 0.0;
      const auto it = r.counters.find("GFlop/s");
      // Rate counters are already normalized by elapsed time at this point.
      if (it != r.counters.end()) rec.gflops = it->second.value;
      records.push_back(std::move(rec));
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const std::string json = bench::json_out_path(argc, argv);
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!json.empty()) bench::write_bench_json(json, reporter.records);
  benchmark::Shutdown();
  return 0;
}
