// Table I reproduction: MLE + prediction on the (synthetic) soil-moisture
// dataset for the three compute variants.
//
// Paper (1M training / 100K testing locations, Mississippi basin): the three
// variants agree on (variance, range, smoothness), log-likelihood, and MSPE
// to ~2-3 significant digits; estimated parameters show medium correlation
// (theta_1 ~ 0.17) and a rough field (theta_2 ~ 0.44). We synthesize a field
// with exactly those parameters and check the same agreement.
#include <cstdio>

#include "bench_utils.hpp"
#include "core/model.hpp"
#include "data/dataset.hpp"
#include "data/synthetic.hpp"
#include "mathx/stats.hpp"

int main() {
  using namespace gsx;
  using namespace gsx::bench;

  data::SoilMoistureConfig dcfg;
  dcfg.n = scaled(700);
  const data::Dataset full = data::make_soil_moisture_like(dcfg);
  Rng split_rng(1);
  auto split = data::split_train_test(full, 6.0 / 7.0, split_rng);
  // The random split destroys the Morton order the TLR structure relies on;
  // restore it on the training set (values carried along).
  data::sort_morton(split.train);

  print_header("Table I - Soil-moisture(-like) 2D space dataset: " +
               std::to_string(split.train.size()) + " training / " +
               std::to_string(split.test.size()) + " testing locations");
  std::printf("ground truth: variance=%.3f range=%.3f smoothness=%.3f\n", dcfg.variance,
              dcfg.range, dcfg.smoothness);

  std::printf("\n%-14s %12s %12s %14s %16s %10s %8s\n", "Approach", "Variance",
              "Range", "Smoothness", "Log-Likelihood", "MSPE", "evals");

  for (core::ComputeVariant variant :
       {core::ComputeVariant::DenseFP64, core::ComputeVariant::MPDense,
        core::ComputeVariant::MPDenseTLR}) {
    // Start away from the truth; bounds from the model.
    geostat::MaternCovariance proto(0.5, 0.1, 0.8, dcfg.nugget);
    core::ModelConfig cfg;
    cfg.variant = variant;
    cfg.tile_size = 64;
    cfg.workers = 2;
    cfg.eps_target = 1e-8;
    cfg.tlr_tol = 1e-8;
    cfg.auto_band = true;
    cfg.nm.max_evals = 150;
    core::GsxModel model(proto.clone(), cfg);

    const core::FitResult fit = model.fit(split.train.locations, split.train.values);
    const geostat::KrigingResult pred = model.predict(
        fit.theta, split.train.locations, split.train.values, split.test.locations, false);
    const double mspe = mathx::mspe(pred.mean, split.test.values);

    std::printf("%-14s %12.4f %12.4f %14.4f %16.4f %10.4f %8zu\n",
                core::variant_name(variant), fit.theta[0], fit.theta[1], fit.theta[2],
                fit.loglik, mspe, fit.evaluations);
  }

  std::printf(
      "\npaper reference (1M locations): Dense FP64 / MP+dense / MP+dense/TLR estimates "
      "agree to ~2 digits; MSPE 0.0330 / 0.0330 / 0.0332.\n");
  return 0;
}
