// Distributed tile Cholesky: factorization time and bytes-on-wire vs process
// count and precision policy (ranks as in-process threads, same code path as
// gsx_dist workers minus fork/exec). The interesting column is bytes_sent:
// MP ships FP32/FP16 panels and TLR ships U/V factors, so the paper's
// memory-footprint win shows up directly as wire-byte reduction vs all-FP64.
//
//   bench_dist_cholesky [--n N] [--tile T] [--json FILE]
//
// JSON records (gsx-bench-v1): "dist/<policy>/p<K>" carries seconds;
// "wire-bytes/<policy>/p<K>" carries total bytes on the wire in `size`.
#include <cstdio>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "bench_utils.hpp"
#include "dist/coordinator.hpp"
#include "dist/dist_cholesky.hpp"

namespace {

using namespace gsx;

struct RunOutcome {
  double seconds = 0.0;         // rank-max factorization time
  std::uint64_t wire_bytes = 0; // total bytes shipped between ranks
};

RunOutcome run_once(const dist::DistProblemConfig& prob, int nprocs,
                    dist::DistPolicy policy) {
  dist::Coordinator coord(nprocs);
  const std::uint16_t port = coord.start();
  std::vector<std::thread> threads;
  std::vector<dist::DistResult> results(static_cast<std::size_t>(nprocs));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r)
    threads.emplace_back([&, r] {
      try {
        dist::DistRunConfig cfg;
        cfg.rank = r;
        cfg.nprocs = nprocs;
        cfg.coord_port = port;
        cfg.workers = 2;
        cfg.policy.policy = policy;
        results[static_cast<std::size_t>(r)] = dist::run_dist_rank(prob, cfg);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  for (std::thread& t : threads) t.join();
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);
  coord.stop();
  RunOutcome out;
  for (const dist::DistResult& res : results) {
    out.seconds = std::max(out.seconds, res.factor_seconds);
    out.wire_bytes += res.stats.bytes_sent;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  dist::DistProblemConfig prob;
  prob.n = 512;
  prob.tile_size = 64;
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--n") prob.n = std::stoul(argv[i + 1]);
    if (arg == "--tile") prob.tile_size = std::stoul(argv[i + 1]);
  }

  const std::vector<int> proc_counts = {1, 2, 4};
  const std::vector<dist::DistPolicy> policies = {
      dist::DistPolicy::Dense, dist::DistPolicy::MixedPrecision,
      dist::DistPolicy::Tlr};

  std::vector<bench::BenchRecord> records;
  std::printf("distributed Cholesky, n=%zu tile=%zu\n", prob.n, prob.tile_size);
  std::printf("%-8s %6s %12s %14s\n", "policy", "procs", "seconds", "wire bytes");
  for (const dist::DistPolicy policy : policies) {
    for (const int p : proc_counts) {
      const RunOutcome out = run_once(prob, p, policy);
      const std::string tag =
          std::string(dist::dist_policy_name(policy)) + "/p" + std::to_string(p);
      std::printf("%-8s %6d %12.4f %14llu\n", dist::dist_policy_name(policy), p,
                  out.seconds, static_cast<unsigned long long>(out.wire_bytes));
      records.push_back({"dist/" + tag, prob.n, out.seconds, 0.0});
      records.push_back({"wire-bytes/" + tag,
                         static_cast<std::size_t>(out.wire_bytes), out.seconds,
                         0.0});
    }
  }

  const std::string json = bench::json_out_path(argc, argv);
  if (!json.empty()) bench::write_bench_json(json, records);
  return 0;
}
