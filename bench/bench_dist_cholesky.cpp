// Distributed tile Cholesky: factorization time and bytes-on-wire vs process
// count and precision policy (ranks as in-process threads, same code path as
// gsx_dist workers minus fork/exec). The interesting column is bytes_sent:
// MP ships FP32/FP16 panels and TLR ships U/V factors, so the paper's
// memory-footprint win shows up directly as wire-byte reduction vs all-FP64.
//
//   bench_dist_cholesky [--n N] [--tile T] [--json FILE]
//
// JSON records (gsx-bench-v1): "dist/<policy>/p<K>" carries seconds;
// "wire-bytes/<policy>/p<K>" carries total bytes on the wire in `size`.
#include <cstdio>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "bench_utils.hpp"
#include "dist/coordinator.hpp"
#include "dist/dist_cholesky.hpp"
#include "la/autotune.hpp"
#include "la/gemm_kernel.hpp"
#include "obs/analytics.hpp"
#include "obs/flight.hpp"
#include "obs/flops.hpp"
#include "obs/hwcounters.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace gsx;

struct RunOutcome {
  double seconds = 0.0;         // rank-max factorization time
  std::uint64_t wire_bytes = 0; // total bytes shipped between ranks
};

RunOutcome run_once(const dist::DistProblemConfig& prob, int nprocs,
                    dist::DistPolicy policy) {
  dist::Coordinator coord(nprocs);
  const std::uint16_t port = coord.start();
  std::vector<std::thread> threads;
  std::vector<dist::DistResult> results(static_cast<std::size_t>(nprocs));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r)
    threads.emplace_back([&, r] {
      try {
        dist::DistRunConfig cfg;
        cfg.rank = r;
        cfg.nprocs = nprocs;
        cfg.coord_port = port;
        cfg.workers = 2;
        cfg.policy.policy = policy;
        results[static_cast<std::size_t>(r)] = dist::run_dist_rank(prob, cfg);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  for (std::thread& t : threads) t.join();
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);
  coord.stop();
  RunOutcome out;
  for (const dist::DistResult& res : results) {
    out.seconds = std::max(out.seconds, res.factor_seconds);
    out.wire_bytes += res.stats.bytes_sent;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Execution analytics for the summary block: task DAG history lands in the
  // flight rings (all in-process ranks share one recorder; per-run graph
  // generations keep them separable) and hw counters feed the roofline line.
  obs::set_enabled(true);
  obs::set_hw_enabled(true);
  obs::RooflinePeaks peaks;
  for (std::size_t p = 0; p < kNumPrecisions; ++p)
    peaks.peak_gflops_per_ghz[p] = la::gemm_peak_gflops(static_cast<Precision>(p), 1.0);
  peaks.fallback_ghz = la::measure_clock_ghz();
  peaks.isa = la::gemm_dispatch_info().isa;
  obs::set_roofline_peaks(peaks);

  dist::DistProblemConfig prob;
  prob.n = 512;
  prob.tile_size = 64;
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--n") prob.n = std::stoul(argv[i + 1]);
    if (arg == "--tile") prob.tile_size = std::stoul(argv[i + 1]);
  }

  const std::vector<int> proc_counts = {1, 2, 4};
  const std::vector<dist::DistPolicy> policies = {
      dist::DistPolicy::Dense, dist::DistPolicy::MixedPrecision,
      dist::DistPolicy::Tlr};

  std::vector<bench::BenchRecord> records;
  std::printf("distributed Cholesky, n=%zu tile=%zu\n", prob.n, prob.tile_size);
  std::printf("%-8s %6s %12s %14s\n", "policy", "procs", "seconds", "wire bytes");
  for (const dist::DistPolicy policy : policies) {
    for (const int p : proc_counts) {
      const RunOutcome out = run_once(prob, p, policy);
      const std::string tag =
          std::string(dist::dist_policy_name(policy)) + "/p" + std::to_string(p);
      std::printf("%-8s %6d %12.4f %14llu\n", dist::dist_policy_name(policy), p,
                  out.seconds, static_cast<unsigned long long>(out.wire_bytes));
      records.push_back({"dist/" + tag, prob.n, out.seconds, 0.0});
      records.push_back({"wire-bytes/" + tag,
                         static_cast<std::size_t>(out.wire_bytes), out.seconds,
                         0.0});
    }
  }

  // Execution-analytics summary over every run above (graph generations in
  // the flight history keep the per-run DAGs separable; the critical path
  // reported is the longest chain of the slowest graph).
  const obs::AnalyticsReport analytics =
      obs::analyze(obs::build_history(obs::FlightRecorder::instance().snapshot()));
  const obs::HwTotals hw = obs::hw_totals();
  const obs::RooflinePeaks rp = obs::roofline_peaks();
  const double ghz = hw.live ? hw.effective_ghz() : rp.fallback_ghz;
  const double achieved = obs::flop_snapshot().gflops_at(Precision::FP64);
  const double peak = rp.peak_gflops_per_ghz[static_cast<std::size_t>(
                          Precision::FP64)] * ghz;
  const double roofline_pct = peak > 0.0 ? 100.0 * achieved / peak : 0.0;
  std::printf("\nexecution analytics (all runs):\n");
  std::printf("  critical path      %.4f s over %zu tasks (dominance %.1f%%)\n",
              analytics.critical_path.length_seconds,
              analytics.critical_path.length_tasks,
              100.0 * analytics.critical_path.dominance);
  std::printf("  parallel efficiency %.1f%%  jain %.3f\n",
              100.0 * analytics.utilization.parallel_efficiency,
              analytics.utilization.jain_fairness);
  std::printf("  comm overlap       %.1f%% of %zu wire events\n",
              100.0 * analytics.overlap.overlap_fraction,
              analytics.overlap.comm_events);
  std::printf("  roofline (FP64)    %.1f%% of peak (%s, hwcounters %s)\n",
              roofline_pct, rp.isa.c_str(),
              hw.live ? "live" : (obs::hw_available() ? "off" : "unavailable"));

  const std::string json = bench::json_out_path(argc, argv);
  if (!json.empty()) {
    // Splice the roofline line into the analytics object so the bench JSON
    // carries the full summary block.
    std::string a = obs::analytics_json(analytics, "  ");
    char roofline[256];
    std::snprintf(roofline, sizeof roofline,
                  "{\"roofline\": {\"fp64_pct_of_peak\": %.6g, \"hwcounters\": "
                  "\"%s\"}, ",
                  roofline_pct,
                  hw.live ? "live" : (obs::hw_available() ? "off" : "unavailable"));
    a.replace(0, 1, roofline);
    bench::write_bench_json(json, records, a);
  }
  return 0;
}
