// Fig. 6 reproduction: distribution of MLE parameter estimates over repeated
// synthetic datasets, for weak/medium/strong spatial correlation and the
// three compute variants. Prints five-number boxplot summaries.
//
// Expected shape (paper, 100 samples of 50K locations): MP+dense and
// MP+dense/TLR boxplots overlap dense FP64; estimates center on the truth;
// strong correlation is the hardest setting (most sensitive to precision
// loss, widest relative spread on the range parameter).
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_utils.hpp"
#include "core/model.hpp"
#include "mathx/stats.hpp"

namespace {

using namespace gsx;
using namespace gsx::bench;

std::size_t replicates() {
  if (const char* s = std::getenv("GSX_BENCH_REPS")) {
    const long v = std::atol(s);
    if (v > 1) return static_cast<std::size_t>(v);
  }
  return 5;  // paper: 100; default keeps the single-core runtime in minutes
}

void print_box(const char* param, const mathx::BoxplotSummary& b, double truth) {
  std::printf("    %-11s min=%7.4f q1=%7.4f med=%7.4f q3=%7.4f max=%7.4f  (truth %.3f)\n",
              param, b.min, b.q1, b.median, b.q3, b.max, truth);
}

}  // namespace

int main() {
  const std::size_t n = scaled(256);
  const std::size_t reps = replicates();
  const double truth_var = 1.0, truth_smooth = 0.5;

  print_header("Fig. 6 - Parameter-estimate boxplots over " + std::to_string(reps) +
               " synthetic Matérn 2D datasets of n=" + std::to_string(n) +
               " (paper: 100 x 50K)");

  for (const auto& preset : correlation_presets()) {
    std::printf("\n==== correlation %s ====\n", preset.name);
    for (core::ComputeVariant variant :
         {core::ComputeVariant::DenseFP64, core::ComputeVariant::MPDense,
          core::ComputeVariant::MPDenseTLR}) {
      std::vector<double> est_var, est_range, est_smooth;
      for (std::size_t r = 0; r < reps; ++r) {
        const SpaceProblem p =
            make_space_problem(n, preset.range, truth_smooth, 1000 + 17 * r);
        geostat::MaternCovariance proto(truth_var, preset.range, truth_smooth, 1e-6);
        core::ModelConfig cfg;
        cfg.variant = variant;
        cfg.tile_size = 64;
        cfg.workers = 2;
        cfg.eps_target = 1e-8;
        cfg.tlr_tol = 1e-8;
        cfg.auto_band = true;
        cfg.nm.max_evals = 100;
        core::GsxModel model(proto.clone(), cfg);
        const core::FitResult fit = model.fit(p.locs, p.z);
        est_var.push_back(fit.theta[0]);
        est_range.push_back(fit.theta[1]);
        est_smooth.push_back(fit.theta[2]);
      }
      std::printf("  %s:\n", core::variant_name(variant));
      print_box("variance", mathx::boxplot_summary(est_var), truth_var);
      print_box("range", mathx::boxplot_summary(est_range), preset.range);
      print_box("smoothness", mathx::boxplot_summary(est_smooth), truth_smooth);
    }
  }
  std::printf(
      "\npaper reference: all three variants recover the truth with overlapping "
      "boxplots; strong correlation is most sensitive to precision loss.\n"
      "set GSX_BENCH_REPS / GSX_BENCH_SCALE for larger runs.\n");
  return 0;
}
