// Fig. 11 reproduction: time-to-solution for the Matérn/Gneiting 2D
// space-time kernel under strong correlation.
//
// Expected shape (paper, 4096 and 48384 Fugaku nodes): MP+dense/TLR still
// wins, but by less than an order of magnitude — strong space-time
// correlation keeps ranks high and low-precision opportunities rare, and
// strong-scaling limits flatten the gain further.
#include <cstdio>
#include <vector>

#include "bench_utils.hpp"
#include "core/model.hpp"

namespace {

using namespace gsx;
using namespace gsx::bench;

double run_variant(core::ComputeVariant variant, const SpaceProblem& p,
                   std::size_t workers, core::EvalBreakdown* bd_out = nullptr) {
  const geostat::GneitingCovariance proto(1.0, 0.3, 0.5, 0.5, 0.9, 0.3, 1e-6);
  core::ModelConfig cfg;
  cfg.variant = variant;
  cfg.tile_size = 64;
  cfg.workers = workers;
  cfg.eps_target = 1e-8;
  cfg.tlr_tol = 1e-8;
  cfg.auto_band = true;
  core::GsxModel model(proto.clone(), cfg);
  core::EvalBreakdown bd;
  const auto v = model.evaluate(proto.params(), p.locs, p.z, &bd);
  if (bd_out) *bd_out = bd;
  return v.ok ? bd.factor.seconds : -1.0;
}

}  // namespace

int main() {
  const std::size_t spatial = scaled(128);
  const std::size_t slots = 8;
  print_header("Fig. 11 - Time-to-solution, Gneiting 2D space-time, strong correlation (n=" +
               std::to_string(spatial * slots) + " = " + std::to_string(spatial) +
               " locations x " + std::to_string(slots) + " slots)");

  const SpaceProblem p = make_spacetime_problem(spatial, slots, 0.3, 0.3);

  std::printf("\n%8s | %12s %12s %12s | %9s %9s\n", "workers", "dense64 (s)", "MP (s)",
              "MP+TLR (s)", "MP spd", "TLR spd");
  double tlr_speedup_st = 0.0;
  for (std::size_t w : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const double dense = run_variant(core::ComputeVariant::DenseFP64, p, w);
    const double mp = run_variant(core::ComputeVariant::MPDense, p, w);
    const double tlr = run_variant(core::ComputeVariant::MPDenseTLR, p, w);
    std::printf("%8zu | %12.4f %12.4f %12.4f | %8.2fx %8.2fx\n", w, dense, mp, tlr,
                dense / mp, dense / tlr);
    if (w == 2) tlr_speedup_st = dense / tlr;
  }

  // Contrast with the weak-correlation *space* case at the same n (Fig. 10's
  // sweet spot): the space-time strong-correlation speedup must be smaller.
  const SpaceProblem sp = make_space_problem(spatial * slots, 0.03);
  const geostat::MaternCovariance proto(1.0, 0.03, 0.5, 1e-6);
  core::ModelConfig cfg;
  cfg.variant = core::ComputeVariant::DenseFP64;
  cfg.tile_size = 64;
  cfg.workers = 2;
  core::GsxModel dense_model(proto.clone(), cfg);
  core::EvalBreakdown bd_dense;
  dense_model.evaluate(proto.params(), sp.locs, sp.z, &bd_dense);
  cfg.variant = core::ComputeVariant::MPDenseTLR;
  cfg.auto_band = true;
  core::GsxModel tlr_model(proto.clone(), cfg);
  core::EvalBreakdown bd_tlr;
  tlr_model.evaluate(proto.params(), sp.locs, sp.z, &bd_tlr);
  const double tlr_speedup_space = bd_dense.factor.seconds / bd_tlr.factor.seconds;

  std::printf(
      "\nMP+dense/TLR speedup: space-time strong correlation %.2fx vs space weak "
      "correlation %.2fx (paper: <10x vs up to 12x)\n",
      tlr_speedup_st, tlr_speedup_space);
  return 0;
}
