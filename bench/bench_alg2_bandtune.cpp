// Algorithm 2 ablation: band_size_dense auto-tuning from the rank profile
// and the kernel performance model (structure-aware runtime decision).
//
// Shows the per-sub-diagonal predicted dense vs TLR costs the tuner
// compares, and the resulting band for weak vs strong correlation with both
// the flop model and the machine-calibrated model.
#include <cstdio>

#include "bench_utils.hpp"
#include "cholesky/factorize.hpp"
#include "geostat/assemble.hpp"
#include "perfmodel/band_tuner.hpp"

namespace {

using namespace gsx;
using namespace gsx::bench;

tile::SymTileMatrix compressed_matrix(std::size_t n, std::size_t ts, double range) {
  Rng rng(3);
  auto locs = geostat::perturbed_grid_locations(n, rng);
  geostat::sort_morton(locs);
  const geostat::MaternCovariance model(1.0, range, 0.5, 1e-6);
  tile::SymTileMatrix a(n, ts);
  geostat::fill_covariance_tiles(a, model, locs, 2);
  cholesky::TlrCompressOptions copt;
  copt.band_size = 1;
  copt.max_rank = ts;  // keep true ranks visible to the tuner
  copt.lr_fp32 = false;
  cholesky::compress_offband(a, copt, 2);
  return a;
}

void report(const char* name, const tile::SymTileMatrix& a,
            const perfmodel::KernelModel& model) {
  const perfmodel::BandDecision d = perfmodel::tune_band_size(a, model, 1.0);
  std::printf("\n%s (crossover rank %zu):\n", name, model.crossover_rank());
  std::printf("  %-12s %16s %16s %8s\n", "sub-diag", "dense pred (s)", "TLR pred (s)",
              "winner");
  for (std::size_t i = 0; i < d.dense_seconds.size(); ++i) {
    std::printf("  %-12zu %16.6f %16.6f %8s\n", i + 1, d.dense_seconds[i],
                d.tlr_seconds[i], d.dense_seconds[i] < d.tlr_seconds[i] ? "dense" : "TLR");
  }
  std::printf("  => band_size_dense = %zu\n", d.band_size_dense);
}

}  // namespace

int main() {
  const std::size_t n = scaled(768);
  const std::size_t ts = 64;
  print_header("Algorithm 2 - band_size_dense auto-tuning, Matérn 2D, n=" +
               std::to_string(n) + ", tile " + std::to_string(ts));

  const auto weak = compressed_matrix(n, ts, 0.03);
  const auto strong = compressed_matrix(n, ts, 0.3);

  const auto flop_model = perfmodel::KernelModel::theoretical(ts);
  report("Weak correlation, flop model", weak, flop_model);
  report("Strong correlation, flop model", strong, flop_model);

  const std::vector<std::size_t> ranks = {ts / 16, ts / 8, ts / 4, ts / 2};
  const auto measured = perfmodel::KernelModel::calibrate(ts, ranks);
  report("Weak correlation, calibrated model", weak, measured);
  report("Strong correlation, calibrated model", strong, measured);

  std::printf(
      "\npaper reference: high ranks cluster near the diagonal, so the tuner keeps a "
      "narrow dense band (wider for strong correlation), cf. Fig. 3(a->b).\n");
  return 0;
}
