// gsx_tune: GEMM kernel autotuner.
//
// Searches the cache blocking (MC/KC/NC) and micro-kernel shape per
// precision on the local machine, reports achieved-vs-peak per
// ISA/precision, and writes a gsx-tune-v1 JSON profile that every gsx
// process loads at startup (GSX_TUNE_PROFILE, or ./gsx-tune.json in the
// working directory). The compiled defaults are always in the candidate
// set, so a tuned profile can only tie or beat them. See docs/tuning.md.
//
//   gsx_tune --out gsx-tune.json            # full search, write profile
//   gsx_tune --quick --check --out p.json   # bounded smoke search + verify

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "la/autotune.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "\n"
               "Tune the packed GEMM kernels for this machine and report\n"
               "achieved vs. theoretical peak per precision.\n"
               "\n"
               "  --quick        bounded search: compiled-default blocking only,\n"
               "                 one benchmark size, fewer reps (seconds, not minutes)\n"
               "  --size N       largest benchmark size (default 256; the full\n"
               "                 search also scores 64 and 128)\n"
               "  --reps N       best-of timing repetitions per candidate (default 5)\n"
               "  --out PATH     write the gsx-tune-v1 profile to PATH\n"
               "  --check        after tuning, re-load the written profile and fail\n"
               "                 unless it parses, applies, and ties-or-beats the\n"
               "                 compiled defaults (requires --out)\n",
               argv0);
}

void print_config(const gsx::la::KernelConfig& c) {
  std::printf("mc=%-4zu kc=%-4zu nc=%-5zu %2dx%-2d", c.blk.mc, c.blk.kc, c.blk.nc, c.mr,
              c.nr);
}

}  // namespace

int main(int argc, char** argv) {
  gsx::la::TuneOptions opts;
  std::string out;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "gsx_tune: %s needs a value\n", arg);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--quick") == 0) {
      opts.quick = true;
      if (opts.reps == 5) opts.reps = 3;
    } else if (std::strcmp(arg, "--size") == 0) {
      opts.size = static_cast<std::size_t>(std::atol(next()));
      if (opts.size < 32 || opts.size > 4096) {
        std::fprintf(stderr, "gsx_tune: --size must be in [32, 4096]\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--reps") == 0) {
      opts.reps = std::atoi(next());
      if (opts.reps < 1) opts.reps = 1;
    } else if (std::strcmp(arg, "--out") == 0) {
      out = next();
    } else if (std::strcmp(arg, "--check") == 0) {
      check = true;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "gsx_tune: unknown argument '%s'\n", arg);
      usage(argv[0]);
      return 2;
    }
  }
  if (check && out.empty()) {
    std::fprintf(stderr, "gsx_tune: --check requires --out\n");
    return 2;
  }

  gsx::la::TuneReport rep;
  const gsx::la::TuneProfile prof = gsx::la::autotune(opts, &rep);

  std::printf("gsx_tune: isa=%s clock~%.2f GHz (estimate)%s\n", rep.isa.c_str(), rep.ghz,
              opts.quick ? " [quick]" : "");
  std::printf(
      "precision  %-26s %-26s %9s %9s %8s %6s %5s\n", "default", "best", "GF/s(def)",
      "GF/s(best)", "peak", "%peak", "cand");
  for (const auto& row : rep.rows) {
    std::printf("%-10s ", std::string(gsx::precision_name(row.precision)).c_str());
    print_config(row.def);
    std::printf(" ");
    print_config(row.best);
    const double pct =
        row.peak_gflops > 0.0 ? 100.0 * row.best_gflops / row.peak_gflops : 0.0;
    std::printf(" %9.1f %9.1f %8.1f %5.1f%% %5d\n", row.def_gflops, row.best_gflops,
                row.peak_gflops, pct, row.candidates);
  }

  if (!out.empty()) {
    std::string err;
    if (!gsx::la::save_profile(prof, out, &err)) {
      std::fprintf(stderr, "gsx_tune: %s\n", err.c_str());
      return 1;
    }
    std::printf("gsx_tune: wrote %s\n", out.c_str());
  }

  if (check) {
    // The smoke contract: the file we just wrote must parse, apply on this
    // machine, and the chosen configs must tie-or-beat the defaults (5%
    // timing-noise allowance; the default is always a candidate, so a real
    // regression means the harness itself is broken).
    gsx::la::TuneProfile reloaded;
    std::string err;
    if (!gsx::la::load_profile(out, &reloaded, &err)) {
      std::fprintf(stderr, "gsx_tune: check failed: %s\n", err.c_str());
      return 1;
    }
    if (!gsx::la::apply_profile(reloaded, &err)) {
      std::fprintf(stderr, "gsx_tune: check failed: %s\n", err.c_str());
      return 1;
    }
    for (const auto& row : rep.rows) {
      if (row.best_gflops < 0.95 * row.def_gflops) {
        std::fprintf(stderr,
                     "gsx_tune: check failed: %s best %.1f GF/s < 0.95 x default %.1f\n",
                     std::string(gsx::precision_name(row.precision)).c_str(),
                     row.best_gflops, row.def_gflops);
        return 1;
      }
    }
    std::printf("gsx_tune: check OK (profile parses, applies, ties-or-beats defaults)\n");
  }
  return 0;
}
