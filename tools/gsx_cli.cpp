// gsx_cli — command-line driver for GeoStatX (the role ExaGeoStat's R/CLI
// front ends play for its users).
//
//   gsx_cli simulate --kernel matern --n 500 --theta 1,0.1,0.5 --out d.csv
//   gsx_cli fit      --data d.csv --kernel matern --variant tlr --workers 2
//   gsx_cli predict  --train d.csv --test t.csv --kernel matern
//                    --theta 1,0.1,0.5 --out pred.csv
//
// Kernels: matern (3 params), matern-nugget (4), powexp (3),
//          aniso-matern (5), gneiting (6).
// Variants: dense | mp | tlr.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "cholesky/tile_solve.hpp"
#include "core/model.hpp"
#include "data/dataset.hpp"
#include "geostat/field.hpp"
#include "geostat/kernel_registry.hpp"
#include "la/autotune.hpp"
#include "la/gemm_kernel.hpp"
#include "mathx/stats.hpp"
#include "obs/health.hpp"
#include "obs/hwcounters.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "runtime/trace_io.hpp"
#include "serve/checkpoint.hpp"
#include "serve/registry.hpp"

namespace {

using namespace gsx;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage: gsx_cli <simulate|fit|predict> [options]\n"
               "  simulate --kernel K --n N --theta a,b,... [--seed S] [--spacetime T]"
               " --out FILE\n"
               "  fit      --data FILE --kernel K [--variant dense|mp|tlr]"
               " [--tile TS] [--workers W] [--start a,b,...] [--max-evals E]"
               " [--checkpoint FILE] [--profile PREFIX]\n"
               "  predict  --train FILE --test FILE --kernel K --theta a,b,..."
               " [--variant V] [--tile TS] [--workers W] [--out FILE]"
               " [--profile PREFIX]\n"
               "  predict  --from-checkpoint FILE --test FILE [--workers W]"
               " [--out FILE]\n"
               "--checkpoint saves MLE restart state on every improvement and the\n"
               "full fitted model (gsx-ckpt-v1) on completion; an existing\n"
               "fit-progress checkpoint at FILE resumes the interrupted fit\n"
               "kernels: matern matern-nugget powexp aniso-matern gneiting\n"
               "--profile writes PREFIX.trace.json (Chrome trace of the full\n"
               "pipeline), PREFIX.profile.json (per-iteration flop/precision/rank\n"
               "report) and PREFIX.flops.csv\n"
               "observability (any command):\n"
               "  --log-level trace|debug|info|warn|error|off   stderr logging\n"
               "  --log-json FILE    structured JSONL log sink (implies info)\n"
               "  --health PREFIX    numerical-health audit -> PREFIX.health.json\n"
               "                     (written even when the run fails)\n");
  std::exit(2);
}

std::map<std::string, std::string> parse_flags(int argc, char** argv, int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) usage(("unexpected argument: " + key).c_str());
    key = key.substr(2);
    if (i + 1 >= argc) usage(("missing value for --" + key).c_str());
    flags[key] = argv[++i];
  }
  return flags;
}

std::string flag(const std::map<std::string, std::string>& flags, const std::string& key,
                 const std::string& fallback = "") {
  const auto it = flags.find(key);
  if (it != flags.end()) return it->second;
  if (fallback.empty()) usage(("required flag --" + key).c_str());
  return fallback;
}

std::vector<double> parse_theta(const std::string& csv) {
  std::vector<double> out;
  std::istringstream is(csv);
  std::string item;
  while (std::getline(is, item, ',')) out.push_back(std::atof(item.c_str()));
  if (out.empty()) usage("empty --theta / --start list");
  return out;
}

std::unique_ptr<geostat::CovarianceModel> make_kernel(const std::string& name,
                                                      const std::vector<double>* theta) {
  // Kernel construction lives in geostat::make_kernel (shared with the
  // serving layer, which reconstructs kernels from checkpoint metadata);
  // here we only translate its exceptions into CLI usage errors.
  try {
    return geostat::make_kernel(
        name, theta ? std::span<const double>(*theta) : std::span<const double>());
  } catch (const std::exception& e) {
    usage(e.what());
  }
}

/// Arm the observability layer when --profile PREFIX was given; returns
/// whether profiling is on. Also arms per-kernel hardware-counter sampling
/// (a clean no-op where perf_event_open is denied) and injects the GEMM peak
/// model so profile.json can report achieved-vs-peak rooflines.
bool begin_profile(const std::map<std::string, std::string>& flags) {
  if (!flags.count("profile")) return false;
  obs::reset_all();
  obs::set_enabled(true);
  obs::set_hw_enabled(true);
  obs::RooflinePeaks peaks;
  for (std::size_t p = 0; p < kNumPrecisions; ++p)
    peaks.peak_gflops_per_ghz[p] =
        la::gemm_peak_gflops(static_cast<Precision>(p), 1.0);
  peaks.fallback_ghz = la::measure_clock_ghz();
  peaks.isa = la::gemm_dispatch_info().isa;
  obs::set_roofline_peaks(peaks);
  return true;
}

/// Flush the profiled run to PREFIX.{trace.json,profile.json,flops.csv}.
/// The reports publish analytics/roofline gauges, so obs stays enabled until
/// they are written.
void end_profile(const std::map<std::string, std::string>& flags) {
  const std::string& prefix = flags.at("profile");
  rt::write_profile_trace_json(prefix + ".trace.json");
  obs::write_profile_json(prefix + ".profile.json");
  obs::write_flops_csv(prefix + ".flops.csv");
  obs::set_hw_enabled(false);
  obs::set_enabled(false);
  std::printf("profile: wrote %s.trace.json, %s.profile.json, %s.flops.csv\n",
              prefix.c_str(), prefix.c_str(), prefix.c_str());
}

/// Arm logging and the numerical-health ledger from the shared flags.
void setup_observability(const std::map<std::string, std::string>& flags) {
  if (flags.count("log-level")) {
    const auto lvl = obs::parse_log_level(flags.at("log-level"));
    if (!lvl) usage(("unknown log level: " + flags.at("log-level")).c_str());
    obs::set_log_level(*lvl);
  }
  if (flags.count("log-json")) {
    obs::open_log_json(flags.at("log-json"));
    // A JSONL sink with the default Off level would stay empty; default to
    // info unless the user chose a level explicitly.
    if (!flags.count("log-level")) obs::set_log_level(obs::LogLevel::Info);
  }
  if (flags.count("health")) {
    obs::reset_health();
    obs::set_health_enabled(true);
  }
}

/// Flush the health ledger (if armed) and close log sinks. Also called on
/// the failure path: the forensic dump matters most when the run dies.
void finish_observability(const std::map<std::string, std::string>& flags) {
  if (flags.count("health")) {
    const std::string path = flags.at("health") + ".health.json";
    obs::write_health_json(path);
    obs::set_health_enabled(false);
    std::printf("health: wrote %s\n", path.c_str());
  }
  obs::close_log_json();
}

core::ModelConfig make_config(const std::map<std::string, std::string>& flags) {
  core::ModelConfig cfg;
  const std::string variant = flag(flags, "variant", "tlr");
  if (variant == "dense") {
    cfg.variant = core::ComputeVariant::DenseFP64;
  } else if (variant == "mp") {
    cfg.variant = core::ComputeVariant::MPDense;
  } else if (variant == "tlr") {
    cfg.variant = core::ComputeVariant::MPDenseTLR;
  } else {
    usage(("unknown variant: " + variant).c_str());
  }
  cfg.tile_size = static_cast<std::size_t>(std::atoll(flag(flags, "tile", "64").c_str()));
  cfg.workers = static_cast<std::size_t>(std::atoll(flag(flags, "workers", "1").c_str()));
  return cfg;
}

int cmd_simulate(const std::map<std::string, std::string>& flags) {
  const std::vector<double> theta = parse_theta(flag(flags, "theta"));
  const auto kernel = make_kernel(flag(flags, "kernel"), &theta);
  const std::size_t n = static_cast<std::size_t>(std::atoll(flag(flags, "n").c_str()));
  const auto seed = static_cast<std::uint64_t>(std::atoll(flag(flags, "seed", "1").c_str()));
  const std::size_t slots =
      static_cast<std::size_t>(std::atoll(flag(flags, "spacetime", "0").c_str()));

  Rng rng(seed);
  data::Dataset d;
  if (slots > 0) {
    auto spatial = geostat::perturbed_grid_locations(n, rng);
    geostat::sort_morton(spatial);
    d.locations = geostat::replicate_in_time(spatial, slots, 1.0);
  } else {
    d.locations = geostat::perturbed_grid_locations(n, rng);
    geostat::sort_morton(d.locations);
  }
  d.values = geostat::simulate_grf(*kernel, d.locations, rng);
  const std::string out = flag(flags, "out");
  data::write_csv(out, d);
  std::printf("wrote %zu observations to %s\n", d.size(), out.c_str());
  return 0;
}

int cmd_fit(const std::map<std::string, std::string>& flags) {
  const data::Dataset d = data::read_csv(flag(flags, "data"));
  const std::string kernel_name = flag(flags, "kernel");
  const std::string ckpt_path =
      flags.count("checkpoint") ? flags.at("checkpoint") : std::string();

  std::unique_ptr<geostat::CovarianceModel> kernel;
  if (!ckpt_path.empty() && std::filesystem::exists(ckpt_path) &&
      serve::probe_checkpoint(ckpt_path) == serve::CheckpointKind::FitProgress) {
    // Restart an interrupted fit from its incumbent best.
    const serve::FitCheckpoint fc = serve::load_fit_checkpoint(ckpt_path);
    if (fc.kernel != kernel_name)
      usage(("checkpoint " + ckpt_path + " was fit with kernel " + fc.kernel).c_str());
    kernel = make_kernel(kernel_name, &fc.theta_best);
    std::printf("resuming from %s (loglik %.6f, %llu evaluations)\n", ckpt_path.c_str(),
                fc.loglik_best, static_cast<unsigned long long>(fc.evaluations));
  } else if (flags.count("start")) {
    const std::vector<double> start = parse_theta(flags.at("start"));
    kernel = make_kernel(kernel_name, &start);
  } else {
    kernel = make_kernel(kernel_name, nullptr);
  }
  core::ModelConfig cfg = make_config(flags);
  cfg.nm.max_evals =
      static_cast<std::size_t>(std::atoll(flag(flags, "max-evals", "200").c_str()));

  core::GsxModel::FitCallback on_improve;
  if (!ckpt_path.empty()) {
    on_improve = [&](const core::GsxModel::FitProgress& p) {
      serve::FitCheckpoint fc;
      fc.kernel = kernel_name;
      fc.theta_best.assign(p.theta_best.begin(), p.theta_best.end());
      fc.loglik_best = p.loglik_best;
      fc.evaluations = p.evaluations;
      serve::save_fit_checkpoint(ckpt_path, fc);
    };
  }

  const bool profiling = begin_profile(flags);
  const core::GsxModel model(kernel->clone(), cfg);
  const core::FitResult fit = model.fit(d.locations, d.values, on_improve);

  if (!ckpt_path.empty()) {
    // Replace the restart checkpoint with the full servable model: fitted
    // theta plus the tile Cholesky factor at that theta.
    serve::ModelCheckpoint mc;
    mc.kernel = kernel_name;
    mc.theta = fit.theta;
    mc.config = cfg;
    mc.train_locs = d.locations;
    mc.z_train = d.values;
    mc.factor = model.factor_at(fit.theta, d.locations);
    serve::save_model_checkpoint(ckpt_path, mc);
    std::printf("checkpoint: wrote fitted model to %s\n", ckpt_path.c_str());
  }
  if (profiling) end_profile(flags);

  std::printf("variant: %s\n", core::variant_name(cfg.variant));
  const auto names = kernel->param_names();
  for (std::size_t i = 0; i < fit.theta.size(); ++i)
    std::printf("  %-14s %.6f\n", names[i].c_str(), fit.theta[i]);
  std::printf("log-likelihood: %.6f\nevaluations: %zu\nconverged: %s\nseconds: %.2f\n",
              fit.loglik, fit.evaluations, fit.converged ? "yes" : "no", fit.seconds);
  return 0;
}

int cmd_predict(const std::map<std::string, std::string>& flags) {
  const data::Dataset test = data::read_csv(flag(flags, "test"));
  const bool profiling = begin_profile(flags);

  geostat::KrigingResult pred;
  if (flags.count("from-checkpoint")) {
    // Fit-once/predict-many path: reload the fitted model (kernel, theta,
    // factored Sigma_nn) and go straight to the tile-native solve.
    const std::size_t workers =
        static_cast<std::size_t>(std::atoll(flag(flags, "workers", "1").c_str()));
    const auto model =
        serve::LoadedModel::from_checkpoint("cli", flags.at("from-checkpoint"));
    pred = cholesky::tile_krige_solved(*model->kernel, model->factor, model->y_solved,
                                       model->train_locs, test.locations, true, workers);
  } else {
    const data::Dataset train = data::read_csv(flag(flags, "train"));
    const std::vector<double> theta = parse_theta(flag(flags, "theta"));
    const auto kernel = make_kernel(flag(flags, "kernel"), &theta);
    const core::ModelConfig cfg = make_config(flags);
    const core::GsxModel model(kernel->clone(), cfg);
    pred = model.predict(theta, train.locations, train.values, test.locations, true);
  }
  if (profiling) end_profile(flags);

  if (flags.count("out")) {
    data::Dataset out;
    out.locations = test.locations;
    out.values = pred.mean;
    data::write_csv(flags.at("out"), out);
    std::printf("wrote %zu predictions to %s\n", out.size(), flags.at("out").c_str());
  }
  if (!test.values.empty()) {
    std::printf("MSPE vs test values: %.6f\n", mathx::mspe(pred.mean, test.values));
  }
  double mean_sd = 0.0;
  for (double v : pred.variance) mean_sd += std::sqrt(std::max(0.0, v));
  std::printf("mean predictive sd: %.6f\n",
              mean_sd / static_cast<double>(pred.variance.size()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  std::map<std::string, std::string> flags;
  try {
    flags = parse_flags(argc, argv, 2);
    setup_observability(flags);
    int rc = 2;
    if (cmd == "simulate") {
      rc = cmd_simulate(flags);
    } else if (cmd == "fit") {
      rc = cmd_fit(flags);
    } else if (cmd == "predict") {
      rc = cmd_predict(flags);
    } else {
      usage(("unknown command: " + cmd).c_str());
    }
    finish_observability(flags);
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gsx_cli: %s\n", e.what());
    if (const auto* ne = dynamic_cast<const gsx::NumericalError*>(&e);
        ne != nullptr && ne->has_context()) {
      const gsx::NumericalContext& c = ne->context();
      std::fprintf(stderr,
                   "  forensics: tile (%ld,%ld), pivot %d, precision %s, rule %s\n",
                   c.tile_i, c.tile_j, c.pivot,
                   std::string(gsx::precision_name(c.precision)).c_str(),
                   c.rule.c_str());
    }
    try {
      finish_observability(flags);
    } catch (const std::exception& e2) {
      std::fprintf(stderr, "gsx_cli: health dump failed: %s\n", e2.what());
    }
    return 1;
  }
}
