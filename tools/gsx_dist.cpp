// gsx_dist: distributed tile Cholesky across real worker processes.
//
//   gsx_dist run --n 512 --tile 64 --procs 4 --policy mp --verify
//
// `run` is the launcher: it starts the NDJSON coordinator (rank rendezvous,
// barriers, allreduce — docs/distributed.md), forks one worker process per
// rank (re-exec'ing this binary with the `worker` subcommand), waits for
// them, and prints the merged wire/spill summary. Workers exchange tiles
// directly over the loopback data plane at their *stored* precision: an FP16
// tile costs 2 bytes/element on the wire, a TLR tile ships only its U/V
// factors.
//
// `worker` is internal (the launcher invokes it); documented here so a rank
// can be run by hand against a live coordinator when debugging.

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dist/coordinator.hpp"
#include "dist/dist_cholesky.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "serve/listener.hpp"

namespace {

using gsx::dist::DistPolicyOptions;
using gsx::dist::DistProblemConfig;
using gsx::dist::DistRunConfig;

struct Options {
  DistProblemConfig prob;
  DistRunConfig run;
  bool verify = false;
  bool expect_spill = false;
  int metrics_port = -1;  // Prometheus scrape port per worker (-1 off, 0 ephemeral)
  std::string flight_dir;
  std::string json_path;
  std::string spill_base;  // launcher-side; workers get spill_base/r<rank>
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s run|worker [options]\n"
               "\n"
               "run: launch a distributed factorization on this machine\n"
               "  --n N             matrix dimension (default 512)\n"
               "  --tile N          tile size (default 64)\n"
               "  --procs K         worker processes (default 4)\n"
               "  --workers W       task-graph threads per worker (default 2)\n"
               "  --policy P        dense | mp | tlr (default dense)\n"
               "  --seed S          problem seed (default 7)\n"
               "  --ooc-bytes B     out-of-core tile pool bound per rank\n"
               "                    (0 = everything resident; default)\n"
               "  --spill-dir DIR   spill directory (required with --ooc-bytes)\n"
               "  --verify          rank 0 recomputes the factor single-process\n"
               "                    and compares element-wise at stored precision\n"
               "  --expect-spill    fail unless the run spilled at least one tile\n"
               "  --flight-dir DIR  dump per-process flight recorders\n"
               "                    (coord.jsonl, w<rank>.jsonl) for gsx_obs merge\n"
               "  --json PATH       write a run summary as JSON\n"
               "  --metrics-port P  per-worker Prometheus scrape port (dist.pool.*,\n"
               "                    taskgraph.*; use 0 so each rank binds an\n"
               "                    ephemeral port, printed at startup)\n"
               "\n"
               "worker: one rank, launched by `run` (internal)\n"
               "  --rank R --procs K --coord-port P  + the problem flags above\n",
               argv0);
}

bool parse_common(Options& o, const std::string& arg,
                  const std::function<std::string()>& value) {
  if (arg == "--n") {
    o.prob.n = std::stoul(value());
  } else if (arg == "--tile") {
    o.prob.tile_size = std::stoul(value());
  } else if (arg == "--seed") {
    o.prob.seed = std::stoull(value());
  } else if (arg == "--procs") {
    o.run.nprocs = static_cast<int>(std::stoul(value()));
  } else if (arg == "--workers") {
    o.run.workers = std::stoul(value());
  } else if (arg == "--policy") {
    o.run.policy.policy = gsx::dist::parse_dist_policy(value());
  } else if (arg == "--ooc-bytes") {
    o.run.ooc_bytes = std::stoull(value());
  } else if (arg == "--verify") {
    o.verify = true;
  } else if (arg == "--flight-dir") {
    o.flight_dir = value();
  } else if (arg == "--metrics-port") {
    try {
      o.metrics_port = static_cast<int>(std::stol(value()));
    } catch (const std::exception&) {
      std::fprintf(stderr, "gsx_dist: --metrics-port needs a port number\n");
      std::exit(2);
    }
  } else {
    return false;
  }
  return true;
}

void dump_flight(const std::string& dir, const std::string& name) {
  if (dir.empty()) return;
  gsx::obs::FlightRecorder::instance().dump(dir + "/" + name + ".jsonl");
}

int worker_main(Options o) {
  gsx::obs::set_enabled(true);
  const std::string name = "w" + std::to_string(o.run.rank);
  gsx::obs::FlightRecorder::instance().set_process_name(name);

  // Per-rank Prometheus exposition: a LineListener with only the metrics
  // scrape side active (the control socket stays ephemeral and unserved).
  // Scrapes see this rank's registry — dist.pool.*, taskgraph.*, la.* — live
  // during the factorization.
  std::unique_ptr<gsx::serve::LineListener> metrics;
  if (o.metrics_port >= 0) {
    try {
      gsx::serve::LineListener::Config cfg;
      cfg.tcp_port = 0;
      cfg.metrics_port = o.metrics_port;
      cfg.log_tag = "dist";
      metrics = std::make_unique<gsx::serve::LineListener>(
          std::move(cfg), [](const std::string&) { return std::string(); });
      metrics->listen();
      std::printf("gsx_dist %s: metrics on http://127.0.0.1:%u/metrics\n",
                  name.c_str(), metrics->metrics_port());
    } catch (const std::exception& e) {
      // Scrape exposition is best-effort: a bind failure (port taken) must
      // not take the rank — and with it the whole fleet — down.
      std::fprintf(stderr, "gsx_dist %s: metrics listener unavailable (%s)\n",
                   name.c_str(), e.what());
      metrics.reset();
    }
    std::fflush(stdout);
  }

  try {
    gsx::dist::DistResult res = gsx::dist::run_dist_rank(o.prob, o.run);
    std::printf("gsx_dist %s: factor %.3fs, sent %llu tiles / %llu bytes\n",
                name.c_str(), res.factor_seconds,
                static_cast<unsigned long long>(res.stats.tiles_sent),
                static_cast<unsigned long long>(res.stats.bytes_sent));
    if (o.run.rank == 0 && o.verify) {
      const auto oracle = gsx::dist::oracle_factor(o.prob, o.run.policy,
                                                   res.global_norm, o.run.workers);
      const gsx::dist::FactorComparison cmp =
          gsx::dist::compare_factors(*res.factor, *oracle);
      std::printf("gsx_dist %s: verify %s (%zu tiles, max |diff| %.3e)\n",
                  name.c_str(), cmp.identical ? "OK" : "MISMATCH",
                  cmp.tiles_compared, cmp.max_abs_diff);
      if (!cmp.identical) {
        dump_flight(o.flight_dir, name);
        if (metrics) metrics->shutdown();
        return 1;
      }
    }
    dump_flight(o.flight_dir, name);
    if (metrics) metrics->shutdown();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gsx_dist %s: %s\n", name.c_str(), e.what());
    dump_flight(o.flight_dir, name);
    if (metrics) metrics->shutdown();
    try {
      gsx::dist::CoordClient client(o.run.coord_port, o.run.rank);
      client.done(false, e.what());
    } catch (...) {
      // coordinator unreachable: the launcher sees the exit status instead
    }
    return 1;
  }
}

int run_main(Options o, const char* self) {
  gsx::obs::set_enabled(true);
  gsx::obs::FlightRecorder::instance().set_process_name("coord");
  if (o.run.ooc_bytes > 0 && o.spill_base.empty()) {
    std::fprintf(stderr, "gsx_dist: --ooc-bytes needs --spill-dir\n");
    return 2;
  }
  if (!o.spill_base.empty()) ::mkdir(o.spill_base.c_str(), 0755);
  if (!o.flight_dir.empty()) ::mkdir(o.flight_dir.c_str(), 0755);

  gsx::dist::Coordinator coord(o.run.nprocs);
  const std::uint16_t port = coord.start();
  std::printf("gsx_dist: coordinator on 127.0.0.1:%u, %d ranks, policy %s\n", port,
              o.run.nprocs, gsx::dist::dist_policy_name(o.run.policy.policy));
  std::fflush(stdout);

  std::vector<pid_t> pids;
  for (int rank = 0; rank < o.run.nprocs; ++rank) {
    std::vector<std::string> args = {
        self,
        "worker",
        "--rank", std::to_string(rank),
        "--procs", std::to_string(o.run.nprocs),
        "--coord-port", std::to_string(port),
        "--n", std::to_string(o.prob.n),
        "--tile", std::to_string(o.prob.tile_size),
        "--seed", std::to_string(o.prob.seed),
        "--workers", std::to_string(o.run.workers),
        "--policy", gsx::dist::dist_policy_name(o.run.policy.policy),
    };
    if (o.run.ooc_bytes > 0) {
      const std::string dir = o.spill_base + "/r" + std::to_string(rank);
      ::mkdir(dir.c_str(), 0755);
      args.insert(args.end(), {"--ooc-bytes", std::to_string(o.run.ooc_bytes),
                               "--spill-dir", dir});
    }
    if (o.verify) args.push_back("--verify");
    if (!o.flight_dir.empty())
      args.insert(args.end(), {"--flight-dir", o.flight_dir});
    // Per-rank scrape ports: pass 0 so each worker binds its own ephemeral
    // port (a fixed port would collide across ranks on one host).
    if (o.metrics_port >= 0)
      args.insert(args.end(), {"--metrics-port", "0"});

    const pid_t pid = ::fork();
    if (pid == 0) {
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(self, argv.data());
      std::perror("gsx_dist: execv");
      ::_exit(127);
    }
    if (pid < 0) {
      std::perror("gsx_dist: fork");
      for (const pid_t p : pids) ::kill(p, SIGKILL);
      return 1;
    }
    pids.push_back(pid);
  }

  // A dead rank would hang the survivors at the next barrier; on the first
  // failed exit, take the rest down so the launcher fails fast.
  bool workers_ok = true;
  std::size_t remaining = pids.size();
  while (remaining > 0) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, 0);
    if (pid < 0) break;
    --remaining;
    const bool ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (!ok && workers_ok) {
      workers_ok = false;
      std::fprintf(stderr, "gsx_dist: worker pid %d failed, stopping the run\n",
                   static_cast<int>(pid));
      for (const pid_t p : pids)
        if (p != pid) ::kill(p, SIGKILL);
    }
  }

  const gsx::dist::RankStats total = coord.total_stats();
  const bool coord_ok = coord.all_ok();
  if (!coord_ok)
    for (const std::string& f : coord.failures())
      std::fprintf(stderr, "gsx_dist: %s\n", f.c_str());
  coord.stop();
  dump_flight(o.flight_dir, "coord");

  std::printf("gsx_dist: wire %llu tiles / %llu bytes, spill out %llu in %llu\n",
              static_cast<unsigned long long>(total.tiles_sent),
              static_cast<unsigned long long>(total.bytes_sent),
              static_cast<unsigned long long>(total.spill_out),
              static_cast<unsigned long long>(total.spill_in));

  bool ok = workers_ok && coord_ok;
  if (o.expect_spill && total.spill_out == 0) {
    std::fprintf(stderr, "gsx_dist: expected out-of-core spills, saw none\n");
    ok = false;
  }
  if (!o.json_path.empty()) {
    std::ofstream out(o.json_path, std::ios::trunc);
    out << "{\"schema\":\"gsx-dist-v1\",\"n\":" << o.prob.n
        << ",\"tile\":" << o.prob.tile_size << ",\"procs\":" << o.run.nprocs
        << ",\"policy\":\"" << gsx::dist::dist_policy_name(o.run.policy.policy)
        << "\",\"ok\":" << (ok ? "true" : "false")
        << ",\"tiles_sent\":" << total.tiles_sent
        << ",\"bytes_sent\":" << total.bytes_sent
        << ",\"spill_out\":" << total.spill_out
        << ",\"spill_in\":" << total.spill_in << "}\n";
  }
  std::printf("gsx_dist: %s\n", ok ? "all ranks OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(argv[0]);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h") {
    usage(argv[0]);
    return 0;
  }

  Options o;
  o.run.nprocs = 4;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::function<std::string()> value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (parse_common(o, arg, value)) continue;
    if (arg == "--rank") {
      o.run.rank = static_cast<int>(std::stoul(value()));
    } else if (arg == "--coord-port") {
      o.run.coord_port = static_cast<std::uint16_t>(std::stoul(value()));
    } else if (arg == "--spill-dir") {
      o.spill_base = value();
      o.run.spill_dir = o.spill_base;  // workers use it directly
    } else if (arg == "--expect-spill") {
      o.expect_spill = true;
    } else if (arg == "--json") {
      o.json_path = value();
    } else {
      std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  ::signal(SIGPIPE, SIG_IGN);  // peer teardown must not kill the process
  if (cmd == "worker") return worker_main(std::move(o));
  if (cmd == "run") return run_main(std::move(o), argv[0]);
  std::fprintf(stderr, "%s: unknown command %s\n", argv[0], cmd.c_str());
  usage(argv[0]);
  return 2;
}
