// gsx_serve: prediction-serving daemon.
//
// Speaks newline-delimited JSON over a Unix-domain or TCP socket (see
// docs/serving.md for the wire protocol). Models are loaded from gsx-ckpt-v1
// checkpoints at startup (--model NAME=PATH, repeatable) or at runtime via
// the "load" verb. SIGINT/SIGTERM trigger a graceful drain: stop accepting,
// finish queued predictions, exit 0.
//
//   gsx_serve --socket /tmp/gsx.sock --workers 4 --model era5=/models/era5.ckpt
//   gsx_serve --port 7421 --cache-mb 2048
//   gsx_serve --port 0 --name r0 --announce 127.0.0.1:7500 --store /models
//     (fleet replica: registers with a gsx_router, see docs/fleet.md)

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <unistd.h>

#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "serve/membership.hpp"
#include "serve/server.hpp"

namespace {

// Self-pipe: the signal handler only writes one byte; the watcher thread does
// the actual shutdown, keeping async-signal-safety trivial.
int g_signal_pipe[2] = {-1, -1};

extern "C" void on_signal(int) {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--socket PATH | --port N] [options]\n"
               "\n"
               "  --socket PATH        listen on a Unix-domain socket\n"
               "  --port N             listen on 127.0.0.1:N (0 = ephemeral; default)\n"
               "  --model NAME=PATH    preload a checkpoint (repeatable)\n"
               "  --workers N          solver threads per batch (default 1)\n"
               "  --queue N            admission queue capacity (default 256)\n"
               "  --max-batch-points N micro-batch cap in test points (default 8192)\n"
               "  --cache-mb N         factor cache capacity in MiB (default 1024)\n"
               "  --deadline-ms N      default per-request deadline (default 30000)\n"
               "  --metrics-port N     Prometheus scrape endpoint on 127.0.0.1:N\n"
               "                       (0 = ephemeral; omit to disable)\n"
               "  --flight-dump PATH   flight-recorder dump file (default\n"
               "                       gsx-flight.jsonl in the working directory)\n"
               "  --store DIR          shared checkpoint store; \"load\" without a\n"
               "                       path resolves NAME to its newest valid\n"
               "                       checkpoint in DIR (see docs/fleet.md)\n"
               "  --announce HOST:PORT register with a gsx_router and heartbeat;\n"
               "                       requires --port (the router dials back)\n"
               "  --name NAME          replica name announced to the router\n"
               "                       (default gsx-<pid>)\n"
               "  --heartbeat-ms N     announcer heartbeat period (default 2000)\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  gsx::serve::ServerConfig cfg;
  std::vector<std::pair<std::string, std::string>> preload;
  std::string announce;  // HOST:PORT of the router, "" = standalone
  std::string replica_name = "gsx-" + std::to_string(::getpid());
  double heartbeat_seconds = 2.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      cfg.unix_path = value();
    } else if (arg == "--port") {
      cfg.tcp_port = static_cast<std::uint16_t>(std::stoul(value()));
    } else if (arg == "--model") {
      const std::string spec = value();
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        std::fprintf(stderr, "%s: --model wants NAME=PATH, got \"%s\"\n", argv[0],
                     spec.c_str());
        return 2;
      }
      preload.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (arg == "--workers") {
      cfg.workers = std::stoul(value());
    } else if (arg == "--queue") {
      cfg.queue_capacity = std::stoul(value());
    } else if (arg == "--max-batch-points") {
      cfg.max_batch_points = std::stoul(value());
    } else if (arg == "--cache-mb") {
      cfg.cache_bytes = std::stoul(value()) * (std::size_t{1} << 20);
    } else if (arg == "--deadline-ms") {
      cfg.default_deadline_seconds = std::stod(value()) / 1000.0;
    } else if (arg == "--metrics-port") {
      cfg.metrics_port = static_cast<int>(std::stoul(value()));
    } else if (arg == "--flight-dump") {
      gsx::obs::FlightRecorder::instance().set_dump_path(value());
    } else if (arg == "--store") {
      cfg.store_dir = value();
    } else if (arg == "--announce") {
      announce = value();
    } else if (arg == "--name") {
      replica_name = value();
    } else if (arg == "--heartbeat-ms") {
      heartbeat_seconds = std::stod(value()) / 1000.0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  // The daemon's metrics are always on (the scrape endpoint is only useful
  // live), and a crash should leave a flight-recorder dump behind. The
  // replica name stamps flight-dump headers so gsx_obs can tell fleet
  // members apart in a merged timeline.
  gsx::obs::set_enabled(true);
  gsx::obs::FlightRecorder::instance().set_process_name(replica_name);
  gsx::obs::FlightRecorder::instance().install_fatal_handlers(STDERR_FILENO);

  gsx::serve::Server server(cfg);
  std::unique_ptr<gsx::serve::Announcer> announcer;
  try {
    for (const auto& [name, path] : preload) {
      const auto model = server.registry().load(name, path);
      gsx::obs::log_info("serve", "preloaded model",
                         {gsx::obs::lf("name", name),
                          gsx::obs::lf("bytes", static_cast<std::uint64_t>(
                                                    model->resident_bytes))});
    }
    const std::uint16_t port = server.listen();
    if (cfg.unix_path.empty())
      std::printf("gsx_serve: listening on 127.0.0.1:%u\n", port);
    else
      std::printf("gsx_serve: listening on %s\n", cfg.unix_path.c_str());
    if (cfg.metrics_port >= 0)
      std::printf("gsx_serve: metrics on 127.0.0.1:%u\n", server.metrics_port());
    if (!announce.empty()) {
      const std::size_t colon = announce.rfind(':');
      if (!cfg.unix_path.empty() || colon == std::string::npos) {
        // The router dials the replica back over TCP, so a fleet member
        // must listen on a TCP port and the announce spec must carry one.
        std::fprintf(stderr,
                     "gsx_serve: --announce needs HOST:PORT and a TCP "
                     "listener (--port), not --socket\n");
        return 2;
      }
      gsx::serve::Announcer::Config acfg;
      acfg.router_host = announce.substr(0, colon);
      acfg.router_port =
          static_cast<std::uint16_t>(std::stoul(announce.substr(colon + 1)));
      acfg.replica_name = replica_name;
      acfg.replica_port = port;
      acfg.heartbeat_seconds = heartbeat_seconds;
      announcer = std::make_unique<gsx::serve::Announcer>(acfg, [&server] {
        const auto stats = server.engine().stats();
        return gsx::serve::ReplicaLoad{static_cast<double>(stats.queue_depth),
                                       static_cast<double>(stats.in_flight)};
      });
      announcer->start();
      std::printf("gsx_serve: announcing as %s to %s\n", replica_name.c_str(),
                  announce.c_str());
    }
    std::fflush(stdout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gsx_serve: %s\n", e.what());
    return 1;
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::perror("gsx_serve: pipe");
    return 1;
  }
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);  // a dropped client must not kill the daemon

  // A wire-initiated "drain" exits through the same pipe as SIGTERM, so both
  // paths stop the announcer (goodbye to the router) before the listener.
  server.set_on_drain([] { on_signal(0); });

  std::thread watcher([&server, &announcer] {
    char byte;
    while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    gsx::obs::log_info("serve", "signal received, draining", {});
    if (announcer) announcer->stop();
    server.shutdown();
  });

  server.serve_forever();

  // serve_forever returns once a signal/wire drain closed the listener or
  // the accept loop failed. The watcher owns the teardown either way (a
  // second stop/shutdown caller here would race it joining the same
  // threads): wake it for the accept-error case and wait for it to finish.
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
  watcher.join();
  std::printf("gsx_serve: drained, bye\n");
  return 0;
}
