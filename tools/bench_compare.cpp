// bench_compare: regression gate over two gsx-bench-v1 JSON files.
//
//   bench_compare baseline.json candidate.json [--threshold PCT]
//
// Records are matched by name. A record regresses when its wall time
// (`seconds`) grows by more than the threshold (default 10%), or its
// throughput (`gflops`, when nonzero in the baseline) drops by more than the
// threshold — this covers both the plain timing rows and the latency rows
// (p50/p999 records carry their quantile in `seconds`). Exit status: 0 clean,
// 1 regressions found, 2 usage/parse errors. Names present in only one file
// are reported but never fail the gate (benchmarks grow columns over time).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "serve/wire.hpp"

namespace {

struct Record {
  double seconds = 0.0;
  double gflops = 0.0;
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options] BASELINE.json CANDIDATE.json\n"
               "\n"
               "Compare two gsx-bench-v1 files and fail on regressions.\n"
               "  --threshold PCT  regression tolerance in percent (default 10)\n",
               argv0);
}

bool load_records(const char* argv0, const std::string& path,
                  std::map<std::string, Record>& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "%s: cannot read %s\n", argv0, path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    const gsx::serve::JsonValue root = gsx::serve::JsonValue::parse(buf.str());
    const gsx::serve::JsonValue* schema = root.find("schema");
    if (schema == nullptr || !schema->is_string() ||
        schema->as_string() != "gsx-bench-v1") {
      std::fprintf(stderr, "%s: %s is not a gsx-bench-v1 file\n", argv0,
                   path.c_str());
      return false;
    }
    const gsx::serve::JsonValue* records = root.find("records");
    if (records == nullptr || !records->is_array()) {
      std::fprintf(stderr, "%s: %s has no records array\n", argv0, path.c_str());
      return false;
    }
    for (const gsx::serve::JsonValue& r : records->as_array()) {
      const gsx::serve::JsonValue* name = r.find("name");
      const gsx::serve::JsonValue* seconds = r.find("seconds");
      if (name == nullptr || !name->is_string() || seconds == nullptr ||
          !seconds->is_number())
        continue;
      Record rec;
      rec.seconds = seconds->as_number();
      const gsx::serve::JsonValue* gflops = r.find("gflops");
      if (gflops != nullptr && gflops->is_number()) rec.gflops = gflops->as_number();
      out[name->as_string()] = rec;
    }
    return true;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s: %s\n", argv0, path.c_str(), e.what());
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  double threshold_pct = 10.0;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --threshold needs a value\n", argv[0]);
        return 2;
      }
      threshold_pct = std::atof(argv[++i]);
      if (threshold_pct <= 0.0) {
        std::fprintf(stderr, "%s: --threshold must be positive\n", argv[0]);
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], arg.c_str());
      usage(argv[0]);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    usage(argv[0]);
    return 2;
  }

  std::map<std::string, Record> base;
  std::map<std::string, Record> cand;
  if (!load_records(argv[0], paths[0], base)) return 2;
  if (!load_records(argv[0], paths[1], cand)) return 2;

  const double tol = threshold_pct / 100.0;
  std::size_t compared = 0;
  std::size_t regressions = 0;
  for (const auto& [name, b] : base) {
    const auto it = cand.find(name);
    if (it == cand.end()) {
      std::printf("MISSING  %-40s (in baseline only)\n", name.c_str());
      continue;
    }
    const Record& c = it->second;
    ++compared;
    bool bad = false;
    if (b.seconds > 0.0 && c.seconds > b.seconds * (1.0 + tol)) {
      std::printf("REGRESS  %-40s seconds %.6g -> %.6g (+%.1f%%)\n", name.c_str(),
                  b.seconds, c.seconds, 100.0 * (c.seconds / b.seconds - 1.0));
      bad = true;
    }
    if (b.gflops > 0.0 && c.gflops < b.gflops * (1.0 - tol)) {
      std::printf("REGRESS  %-40s gflops %.6g -> %.6g (-%.1f%%)\n", name.c_str(),
                  b.gflops, c.gflops, 100.0 * (1.0 - c.gflops / b.gflops));
      bad = true;
    }
    if (bad) ++regressions;
  }
  for (const auto& [name, c] : cand)
    if (base.find(name) == base.end())
      std::printf("NEW      %-40s (in candidate only)\n", name.c_str());

  std::printf("bench_compare: %zu compared, %zu regressions (threshold %.1f%%)\n",
              compared, regressions, threshold_pct);
  if (compared == 0) {
    std::fprintf(stderr, "%s: no records in common — wrong files?\n", argv[0]);
    return 2;
  }
  return regressions > 0 ? 1 : 0;
}
