// gsx_obs: offline observability toolkit.
//
// `merge` folds per-process flight-recorder dumps (the files written by the
// router's flight_collect verb, or any snapshot_jsonl output) into one
// causally-ordered fleet timeline. Each dump's header carries a wall-clock /
// monotonic-clock anchor pair; heartbeat send/ack/recv events supply an
// NTP-style per-replica clock-offset estimate on top of that, so events from
// different machines' clocks land in one order a human can read. See
// docs/observability.md ("Fleet observability") for a worked post-mortem.
//
//   gsx_obs merge pm/flight-router.jsonl pm/flight-r0.jsonl pm/flight-r1.jsonl
//   gsx_obs merge --trace t-00c0ffee12345678 pm/*.jsonl   # one request's story
//   gsx_obs merge --offsets pm/*.jsonl                    # clock offsets only
//   gsx_obs merge --traces pm/*.jsonl                     # trace id inventory

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight_merge.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s merge [options] FILE...\n"
               "\n"
               "Merge flight-recorder JSONL dumps into one fleet timeline.\n"
               "\n"
               "  --trace ID     only events of one trace (\"t-<16 hex>\" or hex)\n"
               "  --offsets      print per-process clock offsets and exit\n"
               "  --traces       print the trace-id inventory and exit\n",
               argv0);
}

std::uint64_t parse_hex_id(const std::string& s) {
  std::size_t begin = 0;
  if (s.size() > 2 && (s[0] == 't' || s[0] == 's') && s[1] == '-') begin = 2;
  return std::strtoull(s.c_str() + begin, nullptr, 16);
}

void print_event(const gsx::obs::MergedEvent& e) {
  std::printf("%17.6f  %-10s %-22s", e.t_wall, e.process.c_str(), e.kind.c_str());
  if (e.request != 0) std::printf(" req=r-%" PRIu64, e.request);
  if (e.trace != 0) std::printf(" trace=t-%016" PRIx64, e.trace);
  if (e.a != 0) std::printf(" a=%" PRIx64, e.a);
  if (e.b != 0) std::printf(" b=%" PRIx64, e.b);
  if (e.v != 0.0) std::printf(" v=%g", e.v);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "merge") != 0) {
    usage(argv[0]);
    return 2;
  }

  std::uint64_t trace_filter = 0;
  bool offsets_only = false;
  bool traces_only = false;
  std::vector<std::string> paths;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --trace needs a value\n", argv[0]);
        return 2;
      }
      trace_filter = parse_hex_id(argv[++i]);
      if (trace_filter == 0) {
        std::fprintf(stderr, "%s: unparseable trace id\n", argv[0]);
        return 2;
      }
    } else if (arg == "--offsets") {
      offsets_only = true;
    } else if (arg == "--traces") {
      traces_only = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], arg.c_str());
      usage(argv[0]);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    usage(argv[0]);
    return 2;
  }

  std::vector<gsx::obs::FlightDump> dumps;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "%s: cannot read %s\n", argv[0], path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    gsx::obs::FlightDump dump = gsx::obs::parse_flight_dump(buf.str());
    if (!dump.has_header)
      std::fprintf(stderr, "%s: warning: %s has no dump header; its events "
                   "stay on the raw monotonic clock\n", argv[0], path.c_str());
    dumps.push_back(std::move(dump));
  }

  const gsx::obs::MergeResult merged = gsx::obs::merge_flight_dumps(dumps);

  for (const auto& [process, offset] : merged.clock_offsets)
    std::printf("offset %-10s %+f s\n", process.c_str(), offset);
  if (offsets_only) return 0;

  if (traces_only) {
    for (const auto& [trace, indices] : merged.traces)
      std::printf("trace t-%016" PRIx64 "  %zu events\n", trace, indices.size());
    return 0;
  }

  std::size_t printed = 0;
  if (trace_filter != 0) {
    const auto it = merged.traces.find(trace_filter);
    if (it == merged.traces.end()) {
      std::fprintf(stderr, "%s: no events for trace t-%016" PRIx64 "\n",
                   argv[0], trace_filter);
      return 1;
    }
    for (const std::size_t i : it->second) {
      print_event(merged.timeline[i]);
      ++printed;
    }
  } else {
    for (const gsx::obs::MergedEvent& e : merged.timeline) {
      print_event(e);
      ++printed;
    }
  }
  std::fprintf(stderr, "%zu dumps, %zu events, %zu traces\n", dumps.size(),
               printed, merged.traces.size());
  return 0;
}
