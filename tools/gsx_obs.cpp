// gsx_obs: offline observability toolkit.
//
// `merge` folds per-process flight-recorder dumps (the files written by the
// router's flight_collect verb, or any snapshot_jsonl output) into one
// causally-ordered fleet timeline. Each dump's header carries a wall-clock /
// monotonic-clock anchor pair; heartbeat send/ack/recv events supply an
// NTP-style per-replica clock-offset estimate on top of that, so events from
// different machines' clocks land in one order a human can read. See
// docs/observability.md ("Fleet observability") for a worked post-mortem.
//
// The analytics subcommands decode the TaskStart/TaskEnd/TaskDepEdge DAG
// execution history (docs/observability.md, "Execution analytics"):
//   critical-path  longest duration-weighted dependency chain + per-op-kind
//                  attribution + per-rank utilization
//   imbalance      per-worker busy/idle/queue-wait, Jain fairness,
//                  comm-vs-compute overlap
//   gantt          Chrome-trace (Perfetto) export of the merged timeline
// Each also accepts its --flag spelling (`gsx_obs --critical-path ...`), and
// FILE arguments may be flight_collect directories (all *.jsonl inside).
//
//   gsx_obs merge pm/flight-router.jsonl pm/flight-r0.jsonl pm/flight-r1.jsonl
//   gsx_obs merge --trace t-00c0ffee12345678 pm/*.jsonl   # one request's story
//   gsx_obs merge --offsets pm/*.jsonl                    # clock offsets only
//   gsx_obs merge --traces pm/*.jsonl                     # trace id inventory
//   gsx_obs critical-path dist_flight/                    # why was it slow?
//   gsx_obs imbalance dist_flight/                        # who sat idle?
//   gsx_obs gantt --out timeline.json dist_flight/        # chrome://tracing

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/analytics.hpp"
#include "obs/flight_merge.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <command> [options] FILE|DIR...\n"
               "\n"
               "Offline analysis of flight-recorder JSONL dumps. A DIR argument\n"
               "reads every *.jsonl inside (flight_collect layout).\n"
               "\n"
               "merge (fleet timeline):\n"
               "  --trace ID       only events of one trace (\"t-<16 hex>\" or hex)\n"
               "  --offsets        print per-process clock offsets and exit\n"
               "  --traces         print the trace-id inventory and exit\n"
               "\n"
               "--critical-path   longest weighted dependency chain, per-op\n"
               "                  attribution, per-rank utilization\n"
               "--imbalance       per-worker busy/idle/queue-wait, Jain index,\n"
               "                  comm-vs-compute overlap\n"
               "--gantt           Chrome-trace export of the merged timeline\n"
               "  --out FILE      gantt output path (default gantt.json)\n"
               "  --json          critical-path/imbalance: machine-readable output\n",
               argv0);
}

std::uint64_t parse_hex_id(const std::string& s) {
  std::size_t begin = 0;
  if (s.size() > 2 && (s[0] == 't' || s[0] == 's') && s[1] == '-') begin = 2;
  return std::strtoull(s.c_str() + begin, nullptr, 16);
}

void print_event(const gsx::obs::MergedEvent& e) {
  std::printf("%17.6f  %-10s %-22s", e.t_wall, e.process.c_str(), e.kind.c_str());
  if (e.request != 0) std::printf(" req=r-%" PRIu64, e.request);
  if (e.trace != 0) std::printf(" trace=t-%016" PRIx64, e.trace);
  if (e.a != 0) std::printf(" a=%" PRIx64, e.a);
  if (e.b != 0) std::printf(" b=%" PRIx64, e.b);
  if (e.v != 0.0) std::printf(" v=%g", e.v);
  std::printf("\n");
}

/// Expand a path argument: plain file, or directory -> every *.jsonl inside.
std::vector<std::string> expand_path(const std::string& path) {
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    std::vector<std::string> out;
    for (const auto& entry : std::filesystem::directory_iterator(path, ec))
      if (entry.path().extension() == ".jsonl") out.push_back(entry.path().string());
    std::sort(out.begin(), out.end());
    return out;
  }
  return {path};
}

bool load_dumps(const char* argv0, const std::vector<std::string>& args,
                std::vector<gsx::obs::FlightDump>& dumps) {
  std::vector<std::string> paths;
  for (const std::string& a : args) {
    const std::vector<std::string> expanded = expand_path(a);
    if (expanded.empty())
      std::fprintf(stderr, "%s: warning: no *.jsonl files in %s\n", argv0, a.c_str());
    paths.insert(paths.end(), expanded.begin(), expanded.end());
  }
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "%s: cannot read %s\n", argv0, path.c_str());
      return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    gsx::obs::FlightDump dump = gsx::obs::parse_flight_dump(buf.str());
    if (!dump.has_header)
      std::fprintf(stderr, "%s: warning: %s has no dump header; its events "
                   "stay on the raw monotonic clock\n", argv0, path.c_str());
    dumps.push_back(std::move(dump));
  }
  return !dumps.empty();
}

void print_utilization(const gsx::obs::UtilizationReport& u) {
  std::printf("per-rank utilization (window %.6f s):\n", u.window_seconds);
  for (const gsx::obs::WorkerUtilization& w : u.workers)
    std::printf("  %-10s worker %2" PRIu64
                "  %5zu tasks  busy %.6f s (%5.1f%%)  queue-wait %.6f s\n",
                w.process.c_str(), w.worker, w.tasks, w.busy_seconds,
                100.0 * w.utilization, w.queue_wait_seconds);
  std::printf("parallel efficiency %.1f%%  jain fairness %.3f\n",
              100.0 * u.parallel_efficiency, u.jain_fairness);
}

int cmd_critical_path(const char* argv0, const std::vector<std::string>& args,
                      bool as_json) {
  std::vector<gsx::obs::FlightDump> dumps;
  if (!load_dumps(argv0, args, dumps)) return 1;
  const gsx::obs::MergeResult merged = gsx::obs::merge_flight_dumps(dumps);
  const gsx::obs::ExecutionHistory history = gsx::obs::build_history(merged.timeline);
  const gsx::obs::AnalyticsReport report = gsx::obs::analyze(history);
  if (as_json) {
    std::printf("%s\n", gsx::obs::analytics_json(report, "").c_str());
    return 0;
  }
  const gsx::obs::CriticalPathReport& cp = report.critical_path;
  if (cp.length_tasks == 0) {
    std::fprintf(stderr, "%s: no task_start/task_end events in the dumps "
                 "(telemetry off, or a pre-analytics recording?)\n", argv0);
    return 1;
  }
  std::printf("critical path: %.6f s over %zu tasks (process %s, graph %" PRIu64
              ", wall span %.6f s, dominance %.1f%%)\n",
              cp.length_seconds, cp.length_tasks, cp.process.c_str(),
              cp.generation, cp.span_seconds, 100.0 * cp.dominance);
  std::printf("op attribution on the path:\n");
  for (const auto& [op, secs] : cp.op_seconds)
    std::printf("  %-10s %.6f s (%5.1f%%)\n", op.c_str(), secs,
                cp.length_seconds > 0.0 ? 100.0 * secs / cp.length_seconds : 0.0);
  std::printf("path (task ids): ");
  const std::size_t show = std::min<std::size_t>(cp.path.size(), 24);
  for (std::size_t i = 0; i < show; ++i)
    std::printf("%s%" PRIu64, i ? " -> " : "", cp.path[i]);
  if (show < cp.path.size())
    std::printf(" ... (%zu more)", cp.path.size() - show);
  std::printf("\n");
  print_utilization(report.utilization);
  return 0;
}

int cmd_imbalance(const char* argv0, const std::vector<std::string>& args,
                  bool as_json) {
  std::vector<gsx::obs::FlightDump> dumps;
  if (!load_dumps(argv0, args, dumps)) return 1;
  const gsx::obs::MergeResult merged = gsx::obs::merge_flight_dumps(dumps);
  const gsx::obs::ExecutionHistory history = gsx::obs::build_history(merged.timeline);
  const gsx::obs::AnalyticsReport report = gsx::obs::analyze(history);
  if (as_json) {
    std::printf("%s\n", gsx::obs::analytics_json(report, "").c_str());
    return 0;
  }
  if (report.utilization.workers.empty()) {
    std::fprintf(stderr, "%s: no task_start/task_end events in the dumps\n", argv0);
    return 1;
  }
  print_utilization(report.utilization);
  std::printf("per-process busy seconds:\n");
  for (const auto& [proc, busy] : report.utilization.process_busy_seconds)
    std::printf("  %-10s %.6f s\n", proc.c_str(), busy);
  const gsx::obs::OverlapReport& ov = report.overlap;
  if (ov.comm_events > 0)
    std::printf("comm overlap: %zu wire events, %.1f%% during compute "
                "(%" PRIu64 " bytes, %" PRIu64 " overlapped)\n",
                ov.comm_events, 100.0 * ov.overlap_fraction, ov.bytes_total,
                ov.bytes_overlapped);
  else
    std::printf("comm overlap: no tile wire events (single process?)\n");
  return 0;
}

int cmd_gantt(const char* argv0, const std::vector<std::string>& args,
              const std::string& out) {
  std::vector<gsx::obs::FlightDump> dumps;
  if (!load_dumps(argv0, args, dumps)) return 1;
  const gsx::obs::MergeResult merged = gsx::obs::merge_flight_dumps(dumps);
  const gsx::obs::ExecutionHistory history = gsx::obs::build_history(merged.timeline);
  std::size_t tasks = 0;
  std::vector<std::string> procs;
  for (const gsx::obs::GraphExec& g : history.graphs) {
    tasks += g.tasks.size();
    procs.push_back(g.process);
  }
  std::sort(procs.begin(), procs.end());
  procs.erase(std::unique(procs.begin(), procs.end()), procs.end());
  gsx::obs::write_gantt_trace(history, out);
  std::printf("gantt: wrote %s (%zu processes, %zu tasks, %zu wire events) -- "
              "load in chrome://tracing or ui.perfetto.dev\n",
              out.c_str(), procs.size(), tasks, history.comm.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(argv[0]);
    return 2;
  }
  // Subcommands accept both spellings: `gsx_obs critical-path ...` and
  // `gsx_obs --critical-path ...`.
  std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h") {
    usage(argv[0]);
    return 0;
  }
  if (cmd.rfind("--", 0) == 0) cmd = cmd.substr(2);

  const bool is_merge = cmd == "merge";
  const bool is_cp = cmd == "critical-path";
  const bool is_imb = cmd == "imbalance";
  const bool is_gantt = cmd == "gantt";
  if (!is_merge && !is_cp && !is_imb && !is_gantt) {
    std::fprintf(stderr, "%s: unknown command %s\n", argv[0], argv[1]);
    usage(argv[0]);
    return 2;
  }

  std::uint64_t trace_filter = 0;
  bool offsets_only = false;
  bool traces_only = false;
  bool as_json = false;
  std::string gantt_out = "gantt.json";
  std::vector<std::string> paths;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (is_merge && arg == "--trace") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --trace needs a value\n", argv[0]);
        return 2;
      }
      trace_filter = parse_hex_id(argv[++i]);
      if (trace_filter == 0) {
        std::fprintf(stderr, "%s: unparseable trace id\n", argv[0]);
        return 2;
      }
    } else if (is_merge && arg == "--offsets") {
      offsets_only = true;
    } else if (is_merge && arg == "--traces") {
      traces_only = true;
    } else if (is_gantt && arg == "--out") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --out needs a value\n", argv[0]);
        return 2;
      }
      gantt_out = argv[++i];
    } else if ((is_cp || is_imb) && arg == "--json") {
      as_json = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], arg.c_str());
      usage(argv[0]);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    usage(argv[0]);
    return 2;
  }

  if (is_cp) return cmd_critical_path(argv[0], paths, as_json);
  if (is_imb) return cmd_imbalance(argv[0], paths, as_json);
  if (is_gantt) return cmd_gantt(argv[0], paths, gantt_out);

  std::vector<gsx::obs::FlightDump> dumps;
  if (!load_dumps(argv[0], paths, dumps)) return 1;

  const gsx::obs::MergeResult merged = gsx::obs::merge_flight_dumps(dumps);

  for (const auto& [process, offset] : merged.clock_offsets)
    std::printf("offset %-10s %+f s\n", process.c_str(), offset);
  if (offsets_only) return 0;

  if (traces_only) {
    for (const auto& [trace, indices] : merged.traces)
      std::printf("trace t-%016" PRIx64 "  %zu events\n", trace, indices.size());
    return 0;
  }

  std::size_t printed = 0;
  if (trace_filter != 0) {
    const auto it = merged.traces.find(trace_filter);
    if (it == merged.traces.end()) {
      std::fprintf(stderr, "%s: no events for trace t-%016" PRIx64 "\n",
                   argv[0], trace_filter);
      return 1;
    }
    for (const std::size_t i : it->second) {
      print_event(merged.timeline[i]);
      ++printed;
    }
  } else {
    for (const gsx::obs::MergedEvent& e : merged.timeline) {
      print_event(e);
      ++printed;
    }
  }
  std::fprintf(stderr, "%zu dumps, %zu events, %zu traces\n", dumps.size(),
               printed, merged.traces.size());
  return 0;
}
