// gsx_router: fleet front door for a set of gsx_serve replicas.
//
// Speaks the same newline-delimited JSON wire as gsx_serve (see
// docs/fleet.md). Replicas started with --announce register here and
// heartbeat; clients send load/unload/predict to the router, which
// consistent-hashes the model name to the owning replica and forwards.
// SIGINT/SIGTERM drain the router (replicas keep running).
//
//   gsx_router --port 7500 --metrics-port 9200
//   gsx_serve --port 0 --name r0 --announce 127.0.0.1:7500 --store /models

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include <unistd.h>

#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "serve/router.hpp"

namespace {

// Self-pipe: the signal handler only writes one byte; the watcher thread does
// the actual shutdown, keeping async-signal-safety trivial.
int g_signal_pipe[2] = {-1, -1};

extern "C" void on_signal(int) {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "\n"
               "  --port N             listen on 127.0.0.1:N (0 = ephemeral; default)\n"
               "  --metrics-port N     Prometheus scrape endpoint on 127.0.0.1:N\n"
               "                       (0 = ephemeral; omit to disable)\n"
               "  --stale-ms N         heartbeat age that marks a replica dead\n"
               "                       (default 10000)\n"
               "  --virtual-nodes N    consistent-hash ring points per replica\n"
               "                       (default 64)\n"
               "  --slo-forward-ms N   forward latency SLO; slower forwards burn\n"
               "                       router.slo.violations (default 1000)\n"
               "  --flight-dump PATH   flight-recorder dump file (default\n"
               "                       gsx-flight.jsonl in the working directory)\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  gsx::serve::RouterConfig cfg;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      cfg.tcp_port = static_cast<std::uint16_t>(std::stoul(value()));
    } else if (arg == "--metrics-port") {
      cfg.metrics_port = static_cast<int>(std::stoul(value()));
    } else if (arg == "--stale-ms") {
      cfg.stale_after_seconds = std::stod(value()) / 1000.0;
    } else if (arg == "--virtual-nodes") {
      cfg.virtual_nodes = std::stoul(value());
    } else if (arg == "--slo-forward-ms") {
      cfg.slo_forward_seconds = std::stod(value()) / 1000.0;
    } else if (arg == "--flight-dump") {
      gsx::obs::FlightRecorder::instance().set_dump_path(value());
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  gsx::obs::set_enabled(true);
  gsx::obs::FlightRecorder::instance().set_process_name("router");
  gsx::obs::FlightRecorder::instance().install_fatal_handlers(STDERR_FILENO);

  gsx::serve::Router router(cfg);
  try {
    const std::uint16_t port = router.listen();
    std::printf("gsx_router: listening on 127.0.0.1:%u\n", port);
    if (cfg.metrics_port >= 0)
      std::printf("gsx_router: metrics on 127.0.0.1:%u\n", router.metrics_port());
    std::fflush(stdout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gsx_router: %s\n", e.what());
    return 1;
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::perror("gsx_router: pipe");
    return 1;
  }
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);  // a dropped client must not kill the daemon

  std::thread watcher([&router] {
    char byte;
    while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    gsx::obs::log_info("router", "signal received, draining", {});
    router.shutdown();
  });

  router.serve_forever();

  // serve_forever returns once a signal/wire drain closed the listener or
  // the accept loop failed. The watcher owns the teardown either way (a
  // second shutdown() caller here would race it joining the same threads):
  // wake it for the accept-error case and wait for it to finish.
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
  watcher.join();
  std::printf("gsx_router: drained, bye\n");
  return 0;
}
