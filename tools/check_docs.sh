#!/bin/sh
# Documentation consistency checks:
#   1. every relative markdown link in the top-level docs and docs/ resolves
#      to an existing file or directory;
#   2. every module directory under src/ appears in the README module map;
#   3. docs/serving.md documents every wire-protocol verb the daemon speaks.
# Run from anywhere: paths resolve against the repo root (this script's
# parent directory). Exits non-zero listing every violation.
set -u

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
status=0

docs="$root/README.md $root/DESIGN.md $root/EXPERIMENTS.md $root/ROADMAP.md"
for f in "$root"/docs/*.md; do
  [ -e "$f" ] && docs="$docs $f"
done

# --- 1. relative links -----------------------------------------------------
for doc in $docs; do
  [ -e "$doc" ] || continue
  dir=$(dirname -- "$doc")
  # Extract markdown link targets: [text](target). One per line; strip
  # anchors; skip absolute URLs and pure in-page anchors.
  targets=$(grep -o '\](<*[^)]*>*)' "$doc" | sed -e 's/^](//' -e 's/)$//' \
            -e 's/^<//' -e 's/>$//' -e 's/#.*$//' | sort -u)
  for t in $targets; do
    [ -z "$t" ] && continue
    case $t in
      http://*|https://*|mailto:*) continue ;;
    esac
    if [ ! -e "$dir/$t" ]; then
      echo "BROKEN LINK: $doc -> $t"
      status=1
    fi
  done
done

# --- 2. README module map covers src/* ------------------------------------
readme="$root/README.md"
for mod in "$root"/src/*/; do
  name=$(basename -- "$mod")
  if ! grep -q "^  $name/" "$readme"; then
    echo "MISSING MODULE: src/$name is not in the README architecture map"
    status=1
  fi
done

# --- 3. serving doc covers every wire verb ---------------------------------
serving="$root/docs/serving.md"
if [ ! -e "$serving" ]; then
  echo "MISSING DOC: docs/serving.md"
  status=1
else
  for verb in load unload predict stats health metrics; do
    if ! grep -q "\"op\":\"$verb\"" "$serving"; then
      echo "MISSING VERB: docs/serving.md has no example for op \"$verb\""
      status=1
    fi
  done
fi

if [ "$status" -eq 0 ]; then
  echo "check_docs: OK"
fi
exit $status
