#!/bin/sh
# Documentation consistency checks:
#   1. every relative markdown link in the top-level docs and docs/ resolves
#      to an existing file or directory;
#   2. every module directory under src/ appears in the README module map;
#   3. every wire verb the server speaks (kServerVerbs in
#      src/serve/wire.cpp) has an "op" example in docs/serving.md, every
#      router verb (kRouterVerbs) has one in docs/fleet.md, and every
#      coordinator verb (kDistVerbs in src/dist/coordinator.cpp) has one
#      in docs/distributed.md — the verb lists are extracted from the
#      source, so adding a verb without documenting it fails this check;
#   4. every CLI flag printed by gsx_serve's, gsx_router's, gsx_dist's,
#      gsx_tune's and gsx_obs's usage() text is mentioned somewhere in
#      README.md or docs/;
#   5. every metric name registered in the serving, distributed,
#      linear-algebra and analytics planes (serve.* / router.* /
#      taskgraph.* / dist.* / la.* / obs.* literals passed to
#      counter()/gauge()/histogram() under src/)
#      appears in docs/observability.md. Names
#      built with a runtime suffix ("router.requests." + name) end in '.'
#      in the source; the documented prefix is what is checked;
#   6. every GSX_* environment variable the code reads (quoted literals
#      under src/ and tools/) is documented in README.md or docs/ — an
#      env knob nobody can discover is a bug.
# Run from anywhere: paths resolve against the repo root (this script's
# parent directory). Exits non-zero listing every violation.
set -u

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
status=0

docs="$root/README.md $root/DESIGN.md $root/EXPERIMENTS.md $root/ROADMAP.md"
for f in "$root"/docs/*.md; do
  [ -e "$f" ] && docs="$docs $f"
done

# --- 1. relative links -----------------------------------------------------
for doc in $docs; do
  [ -e "$doc" ] || continue
  dir=$(dirname -- "$doc")
  # Extract markdown link targets: [text](target). One per line; strip
  # anchors; skip absolute URLs and pure in-page anchors.
  targets=$(grep -o '\](<*[^)]*>*)' "$doc" | sed -e 's/^](//' -e 's/)$//' \
            -e 's/^<//' -e 's/>$//' -e 's/#.*$//' | sort -u)
  for t in $targets; do
    [ -z "$t" ] && continue
    case $t in
      http://*|https://*|mailto:*) continue ;;
    esac
    if [ ! -e "$dir/$t" ]; then
      echo "BROKEN LINK: $doc -> $t"
      status=1
    fi
  done
done

# --- 2. README module map covers src/* ------------------------------------
readme="$root/README.md"
for mod in "$root"/src/*/; do
  name=$(basename -- "$mod")
  if ! grep -q "^  $name/" "$readme"; then
    echo "MISSING MODULE: src/$name is not in the README architecture map"
    status=1
  fi
done

# --- 3. docs cover every wire verb -----------------------------------------
# Each verb table keeps one string literal per verb so it can be extracted
# here: take the initializer list of the named table in the named source.
extract_verbs() {
  # $1 = table name (kServerVerbs / kRouterVerbs / kDistVerbs),
  # $2 = source path (repo-relative)
  sed -n "/$1 = {/,/};/p" "$root/$2" | grep -o '"[a-z_]*"' | tr -d '"'
}
check_verbs() {
  # $1 = table name, $2 = source path, $3 = doc path (repo-relative)
  doc="$root/$3"
  if [ ! -e "$doc" ]; then
    echo "MISSING DOC: $3"
    status=1
    return
  fi
  verbs=$(extract_verbs "$1" "$2")
  if [ -z "$verbs" ]; then
    echo "EXTRACT FAILED: no verbs found for $1 in $2"
    status=1
    return
  fi
  for verb in $verbs; do
    if ! grep -q "\"op\":\"$verb\"" "$doc"; then
      echo "MISSING VERB: $3 has no example for op \"$verb\" ($1)"
      status=1
    fi
  done
}
check_verbs kServerVerbs src/serve/wire.cpp docs/serving.md
check_verbs kRouterVerbs src/serve/wire.cpp docs/fleet.md
check_verbs kDistVerbs src/dist/coordinator.cpp docs/distributed.md

# --- 4. docs cover every daemon CLI flag -----------------------------------
# Flags are taken from each tool's usage() text (the lines between
# "usage:" and the closing of the fprintf call), so a flag added to the
# daemons must show up in README.md or docs/*.md.
check_flags() {
  # $1 = tool source (repo-relative)
  src="$root/$1"
  flags=$(sed -n '/^void usage/,/^}/p' "$src" | grep -o '\--[a-z-][a-z-]*' | sort -u)
  if [ -z "$flags" ]; then
    echo "EXTRACT FAILED: no flags found in $1 usage()"
    status=1
    return
  fi
  for flag in $flags; do
    found=0
    for doc in $docs; do
      [ -e "$doc" ] || continue
      if grep -q -- "$flag" "$doc"; then
        found=1
        break
      fi
    done
    if [ "$found" -eq 0 ]; then
      echo "MISSING FLAG: $flag ($1) is not documented in README.md or docs/"
      status=1
    fi
  done
}
check_flags tools/gsx_serve.cpp
check_flags tools/gsx_router.cpp
check_flags tools/gsx_dist.cpp
check_flags tools/gsx_tune.cpp
check_flags tools/gsx_obs.cpp

# --- 5. observability docs cover every registered metric name ---------------
# Extract the string literal of each instrument registration. Dynamic
# families keep a trailing '.' ("router.requests.") — documenting the
# prefix (e.g. "router.requests.<replica>") satisfies the check.
obs_doc="$root/docs/observability.md"
if [ ! -e "$obs_doc" ]; then
  echo "MISSING DOC: docs/observability.md"
  status=1
else
  metrics=$(grep -rhoE '(counter|gauge|histogram)\("(serve|router|taskgraph|dist|la|obs)\.[A-Za-z0-9_.]+"' \
              "$root/src" | sed -e 's/.*("//' -e 's/"$//' | sort -u)
  if [ -z "$metrics" ]; then
    echo "EXTRACT FAILED: no registered metric names found under src/"
    status=1
  fi
  for m in $metrics; do
    if ! grep -qF "$m" "$obs_doc"; then
      echo "MISSING METRIC: \"$m\" is not documented in docs/observability.md"
      status=1
    fi
  done
fi

# --- 6. docs cover every GSX_* environment variable -------------------------
# Any quoted "GSX_..." literal in the source is an env knob the code reads
# (getenv and friends); each one must be discoverable in README.md or docs/.
envs=$(grep -rhoE '"GSX_[A-Z0-9_]+"' "$root/src" "$root/tools" 2>/dev/null \
         | tr -d '"' | sort -u)
if [ -z "$envs" ]; then
  echo "EXTRACT FAILED: no GSX_* environment literals found under src/ or tools/"
  status=1
fi
for e in $envs; do
  found=0
  for doc in $docs; do
    [ -e "$doc" ] || continue
    if grep -q "$e" "$doc"; then
      found=1
      break
    fi
  done
  if [ "$found" -eq 0 ]; then
    echo "MISSING ENV VAR: $e is not documented in README.md or docs/"
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "check_docs: OK"
fi
exit $status
