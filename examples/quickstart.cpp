// Quickstart: simulate a Gaussian random field, fit a Matérn model by MLE
// through the adaptive mixed-precision + tile-low-rank Cholesky, and predict
// at held-out locations.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/model.hpp"
#include "geostat/field.hpp"
#include "mathx/stats.hpp"

int main() {
  using namespace gsx;

  // 1. Locations: an irregular set in the unit square, Morton-sorted so the
  //    covariance matrix clusters its mass near the diagonal.
  Rng rng(2022);
  std::vector<geostat::Location> locs = geostat::perturbed_grid_locations(500, rng);
  geostat::sort_morton(locs);

  // 2. Simulate observations from a known Matérn model (the "truth").
  const geostat::MaternCovariance truth(/*variance=*/1.0, /*range=*/0.12,
                                        /*smoothness=*/0.5, /*nugget=*/1e-6);
  const std::vector<double> z = geostat::simulate_grf(truth, locs, rng);

  // 3. Hold out the last 50 observations for prediction.
  const std::size_t ntrain = 450;
  const std::span<const geostat::Location> train(locs.data(), ntrain);
  const std::span<const geostat::Location> test(locs.data() + ntrain, locs.size() - ntrain);
  const std::span<const double> ztrain(z.data(), ntrain);
  const std::vector<double> ztest(z.begin() + ntrain, z.end());

  // 4. Configure the model: MP+dense/TLR variant (the paper's headline),
  //    adaptive Frobenius precision rule, auto-tuned dense band.
  geostat::MaternCovariance start(/*variance=*/0.5, /*range=*/0.05, /*smoothness=*/1.0,
                                  /*nugget=*/1e-6);
  core::ModelConfig cfg;
  cfg.variant = core::ComputeVariant::MPDenseTLR;
  cfg.tile_size = 64;
  cfg.workers = 2;
  cfg.nm.max_evals = 120;
  core::GsxModel model(start.clone(), cfg);

  // 5. Fit by maximum likelihood.
  const core::FitResult fit = model.fit(train, ztrain);
  std::printf("fitted theta: variance=%.4f range=%.4f smoothness=%.4f\n", fit.theta[0],
              fit.theta[1], fit.theta[2]);
  std::printf("log-likelihood %.4f after %zu evaluations (%.2fs)\n", fit.loglik,
              fit.evaluations, fit.seconds);

  // 6. Predict held-out values with uncertainty.
  const geostat::KrigingResult pred = model.predict(fit.theta, train, ztrain, test);
  std::printf("prediction MSPE: %.4f (prior variance %.4f)\n",
              mathx::mspe(pred.mean, ztest), fit.theta[0]);
  std::printf("first three predictions: ");
  for (int i = 0; i < 3; ++i)
    std::printf("%.3f+/-%.3f ", pred.mean[i], std::sqrt(std::max(0.0, pred.variance[i])));
  std::printf("\n");
  return 0;
}
