// Adaptive Cholesky internals: decision heat maps, the Algorithm-2 band
// auto-tuning, the task DAG the runtime executes, and an execution trace.
//
//   $ ./examples/adaptive_cholesky_demo
#include <cstdio>

#include "cholesky/factorize.hpp"
#include "core/model.hpp"
#include "geostat/assemble.hpp"
#include "perfmodel/band_tuner.hpp"

int main() {
  using namespace gsx;

  const std::size_t n = 768;
  const std::size_t ts = 64;
  Rng rng(1);
  auto locs = geostat::perturbed_grid_locations(n, rng);
  geostat::sort_morton(locs);
  const geostat::MaternCovariance proto(1.0, 0.05, 0.5, 1e-6);

  std::printf("== decision map at n=%zu, tile %zu (D/S/H dense FP64/32/16; L/l low-rank "
              "FP64/32) ==\n", n, ts);
  core::ModelConfig cfg;
  cfg.variant = core::ComputeVariant::MPDenseTLR;
  cfg.tile_size = ts;
  cfg.workers = 2;
  cfg.auto_band = true;
  core::GsxModel model(proto.clone(), cfg);
  core::EvalBreakdown bd;
  const tile::SymTileMatrix decided =
      model.build_decision_matrix(proto.params(), locs, &bd);
  for (const auto& row : decided.decision_map()) std::printf("  %s\n", row.c_str());
  std::printf("auto-tuned band_size_dense = %zu; footprint %.2f of %.2f MiB\n",
              bd.band_size_dense, bd.footprint_bytes / 1048576.0,
              bd.dense_fp64_bytes / 1048576.0);

  std::printf("\n== factorization through the task runtime, with tracing ==\n");
  tile::SymTileMatrix a(n, ts);
  geostat::fill_covariance_tiles(a, proto, locs, 2);
  cholesky::PrecisionPolicy policy;
  policy.rule = cholesky::PrecisionRule::AdaptiveFrobenius;
  cholesky::apply_precision_policy(a, policy);

  cholesky::FactorOptions fopt;
  fopt.workers = 2;
  fopt.tracing = true;
  const cholesky::FactorReport rep = cholesky::tile_cholesky_dense(a, fopt);
  std::printf("info=%d  tasks=%zu  edges=%zu  critical path=%zu tasks / %.4fs\n",
              rep.info, rep.graph.num_tasks, rep.graph.num_edges,
              rep.graph.critical_path_tasks, rep.graph.critical_path_seconds);
  std::printf("makespan %.4fs, total task time %.4fs, parallel efficiency %.0f%% at 2 "
              "workers\n",
              rep.graph.makespan_seconds, rep.graph.total_task_seconds,
              100.0 * rep.graph.parallel_efficiency(2));

  std::printf("\nfirst ten trace events (task, worker, start ms, end ms):\n");
  // Tracing is recorded by the graph; re-run a small instance to show it.
  tile::SymTileMatrix b(256, 64);
  geostat::fill_covariance_tiles(b, proto, std::span(locs.data(), 256), 1);
  rt::TaskGraph demo;
  demo.set_tracing(true);
  // Submit a tiny hand-built chain for illustration.
  const auto d0 = rt::DatumId::from_index(0);
  for (int i = 0; i < 10; ++i)
    demo.submit("step" + std::to_string(i), {{d0, rt::Access::ReadWrite}}, [] {
      volatile double x = 0;
      for (int k = 0; k < 100000; ++k) x = x + 1.0;
    });
  demo.run(2);
  for (const auto& ev : demo.trace())
    std::printf("  %-8s worker %zu  %8.3f -> %8.3f\n", ev.name.c_str(), ev.worker,
                ev.start_seconds * 1e3, ev.end_seconds * 1e3);
  return 0;
}
