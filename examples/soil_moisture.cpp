// Soil-moisture scenario (paper Table I): train a Matérn space model on a
// soil-moisture-like dataset, compare the three compute variants' parameter
// estimates and prediction errors, and inspect the adaptive decisions.
//
//   $ ./examples/soil_moisture [n]
#include <cstdio>
#include <cstdlib>

#include "core/model.hpp"
#include "data/synthetic.hpp"
#include "mathx/stats.hpp"

int main(int argc, char** argv) {
  using namespace gsx;

  data::SoilMoistureConfig dcfg;
  dcfg.n = (argc > 1) ? static_cast<std::size_t>(std::atoll(argv[1])) : 500;

  std::printf("generating soil-moisture-like Matérn field at %zu locations\n", dcfg.n);
  std::printf("ground truth: variance=%.3f range=%.3f smoothness=%.3f (Table I values)\n",
              dcfg.variance, dcfg.range, dcfg.smoothness);

  const data::Dataset full = data::make_soil_moisture_like(dcfg);
  Rng rng(7);
  auto split = data::split_train_test(full, 0.85, rng);
  data::sort_morton(split.train);

  for (core::ComputeVariant variant :
       {core::ComputeVariant::DenseFP64, core::ComputeVariant::MPDense,
        core::ComputeVariant::MPDenseTLR}) {
    geostat::MaternCovariance start(0.5, 0.1, 0.8, dcfg.nugget);
    core::ModelConfig cfg;
    cfg.variant = variant;
    cfg.tile_size = 64;
    cfg.workers = 2;
    cfg.nm.max_evals = 120;
    core::GsxModel model(start.clone(), cfg);

    const core::FitResult fit = model.fit(split.train.locations, split.train.values);
    const geostat::KrigingResult pred =
        model.predict(fit.theta, split.train.locations, split.train.values,
                      split.test.locations, /*with_variance=*/false);
    const double mspe = mathx::mspe(pred.mean, split.test.values);

    core::EvalBreakdown bd;
    model.evaluate(fit.theta, split.train.locations, split.train.values, &bd);
    std::printf(
        "\n%-14s theta=(%.4f, %.4f, %.4f)  llh=%.3f  MSPE=%.4f\n"
        "               matrix footprint %.2f MiB of %.2f MiB dense "
        "(tasks=%zu, critical path=%zu)\n",
        core::variant_name(variant), fit.theta[0], fit.theta[1], fit.theta[2], fit.loglik,
        mspe, bd.footprint_bytes / 1048576.0, bd.dense_fp64_bytes / 1048576.0,
        bd.factor.graph.num_tasks, bd.factor.graph.critical_path_tasks);
  }
  return 0;
}
