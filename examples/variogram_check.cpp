// Model diagnostics: compare the empirical semivariogram of a dataset with
// the fitted model's theoretical curve (the classic geostatistics check
// that the MLE landed on a sensible model).
//
//   $ ./examples/variogram_check
#include <cstdio>

#include "core/model.hpp"
#include "data/synthetic.hpp"
#include "geostat/variogram.hpp"

int main() {
  using namespace gsx;

  data::SoilMoistureConfig cfg;
  cfg.n = 400;
  const data::Dataset d = data::make_soil_moisture_like(cfg);

  // Fit by MLE through the adaptive variant.
  geostat::MaternCovariance start(0.5, 0.1, 0.8, cfg.nugget);
  core::ModelConfig mc;
  mc.variant = core::ComputeVariant::MPDenseTLR;
  mc.tile_size = 64;
  mc.workers = 2;
  mc.nm.max_evals = 120;
  core::GsxModel model(start.clone(), mc);
  const core::FitResult fit = model.fit(d.locations, d.values);
  geostat::MaternCovariance fitted(fit.theta[0], fit.theta[1], fit.theta[2], cfg.nugget);

  std::printf("fitted theta = (%.4f, %.4f, %.4f), truth = (%.3f, %.3f, %.3f)\n\n",
              fit.theta[0], fit.theta[1], fit.theta[2], cfg.variance, cfg.range,
              cfg.smoothness);

  geostat::VariogramOptions vo;
  vo.num_bins = 12;
  const auto vg = geostat::empirical_variogram(d.locations, d.values, vo);

  std::printf("%10s %12s %12s %12s %8s\n", "lag", "empirical", "fitted", "truth",
              "pairs");
  const geostat::MaternCovariance truth(cfg.variance, cfg.range, cfg.smoothness,
                                        cfg.nugget);
  for (const auto& b : vg) {
    std::printf("%10.4f %12.4f %12.4f %12.4f %8zu\n", b.distance, b.gamma,
                geostat::model_semivariogram(fitted, b.distance),
                geostat::model_semivariogram(truth, b.distance), b.pairs);
  }
  std::printf("\nWLS(fitted) = %.1f, WLS(truth) = %.1f (lower is better)\n",
              geostat::variogram_wls(vg, fitted), geostat::variogram_wls(vg, truth));
  return 0;
}
