// Evapotranspiration scenario (paper Table II): synthesize a Gneiting
// space-time dataset with seasonal climatology and spatial trends, run the
// paper's preprocessing pipeline (climatology removal + per-month linear
// detrend), fit the six-parameter non-separable model, and predict.
//
//   $ ./examples/evapotranspiration [spatial_n] [months]
#include <cstdio>
#include <cstdlib>

#include "core/model.hpp"
#include "data/synthetic.hpp"
#include "mathx/stats.hpp"

int main(int argc, char** argv) {
  using namespace gsx;

  data::EtConfig dcfg;
  dcfg.spatial_n = (argc > 1) ? static_cast<std::size_t>(std::atoll(argv[1])) : 64;
  dcfg.months = (argc > 2) ? static_cast<std::size_t>(std::atoll(argv[2])) : 6;
  dcfg.history_years = 10;

  std::printf("synthesizing %zu months x %zu locations of ET-like data (+%zu history "
              "years for the climatology)\n",
              dcfg.months, dcfg.spatial_n, dcfg.history_years);

  const data::SpaceTimeDataset ds = data::make_et_like(dcfg);
  std::printf("raw variance %.3f -> ", mathx::variance(ds.raw));
  const std::vector<double> residual = data::detrend_et(ds);
  std::printf("detrended residual variance %.3f (underlying field %.3f)\n",
              mathx::variance(residual), mathx::variance(ds.truth_residual));

  // Hold out one of every eight space-time points.
  data::Dataset all;
  all.locations = ds.locations;
  all.values = residual;
  Rng rng(5);
  auto split = data::split_train_test(all, 0.875, rng);
  data::sort_morton(split.train, /*use_time=*/true);

  geostat::GneitingCovariance start(0.7, 0.4, 0.5, 0.3, 0.7, 0.4, dcfg.nugget);
  core::ModelConfig cfg;
  cfg.variant = core::ComputeVariant::MPDenseTLR;
  cfg.tile_size = 64;
  cfg.workers = 2;
  cfg.nm.max_evals = 150;
  core::GsxModel model(start.clone(), cfg);

  const core::FitResult fit = model.fit(split.train.locations, split.train.values);
  std::printf(
      "\nfitted Gneiting parameters (truth in parentheses):\n"
      "  variance    %.4f (%.3f)\n  range-space %.4f (%.3f)\n"
      "  smooth-space %.4f (%.3f)\n  range-time  %.4f (%.3f)\n"
      "  smooth-time %.4f (%.3f)\n  nonsep beta %.4f (%.3f)\n",
      fit.theta[0], dcfg.variance, fit.theta[1], dcfg.range_s, fit.theta[2], dcfg.smooth_s,
      fit.theta[3], dcfg.range_t, fit.theta[4], dcfg.smooth_t, fit.theta[5], dcfg.beta);

  const geostat::KrigingResult pred =
      model.predict(fit.theta, split.train.locations, split.train.values,
                    split.test.locations, /*with_variance=*/false);
  std::printf("held-out MSPE %.4f (zero-predictor %.4f)\n",
              mathx::mspe(pred.mean, split.test.values),
              mathx::variance(split.test.values));
  return 0;
}
