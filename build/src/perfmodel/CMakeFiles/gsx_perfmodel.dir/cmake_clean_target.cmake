file(REMOVE_RECURSE
  "libgsx_perfmodel.a"
)
