# Empty compiler generated dependencies file for gsx_perfmodel.
# This may be replaced when dependencies are built.
