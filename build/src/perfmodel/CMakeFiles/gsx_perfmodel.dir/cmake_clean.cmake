file(REMOVE_RECURSE
  "CMakeFiles/gsx_perfmodel.dir/band_tuner.cpp.o"
  "CMakeFiles/gsx_perfmodel.dir/band_tuner.cpp.o.d"
  "CMakeFiles/gsx_perfmodel.dir/kernel_model.cpp.o"
  "CMakeFiles/gsx_perfmodel.dir/kernel_model.cpp.o.d"
  "libgsx_perfmodel.a"
  "libgsx_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsx_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
