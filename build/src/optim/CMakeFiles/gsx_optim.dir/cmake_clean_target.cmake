file(REMOVE_RECURSE
  "libgsx_optim.a"
)
