file(REMOVE_RECURSE
  "CMakeFiles/gsx_optim.dir/nelder_mead.cpp.o"
  "CMakeFiles/gsx_optim.dir/nelder_mead.cpp.o.d"
  "CMakeFiles/gsx_optim.dir/pso.cpp.o"
  "CMakeFiles/gsx_optim.dir/pso.cpp.o.d"
  "libgsx_optim.a"
  "libgsx_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsx_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
