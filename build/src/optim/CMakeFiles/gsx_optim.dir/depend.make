# Empty dependencies file for gsx_optim.
# This may be replaced when dependencies are built.
