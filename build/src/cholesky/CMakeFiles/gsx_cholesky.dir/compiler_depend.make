# Empty compiler generated dependencies file for gsx_cholesky.
# This may be replaced when dependencies are built.
