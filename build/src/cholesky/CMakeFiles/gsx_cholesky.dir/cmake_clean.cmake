file(REMOVE_RECURSE
  "CMakeFiles/gsx_cholesky.dir/factorize.cpp.o"
  "CMakeFiles/gsx_cholesky.dir/factorize.cpp.o.d"
  "CMakeFiles/gsx_cholesky.dir/precision_policy.cpp.o"
  "CMakeFiles/gsx_cholesky.dir/precision_policy.cpp.o.d"
  "CMakeFiles/gsx_cholesky.dir/tile_kernels.cpp.o"
  "CMakeFiles/gsx_cholesky.dir/tile_kernels.cpp.o.d"
  "CMakeFiles/gsx_cholesky.dir/tile_solve.cpp.o"
  "CMakeFiles/gsx_cholesky.dir/tile_solve.cpp.o.d"
  "libgsx_cholesky.a"
  "libgsx_cholesky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsx_cholesky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
