file(REMOVE_RECURSE
  "libgsx_cholesky.a"
)
