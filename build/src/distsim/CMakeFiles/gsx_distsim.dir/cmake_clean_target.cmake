file(REMOVE_RECURSE
  "libgsx_distsim.a"
)
