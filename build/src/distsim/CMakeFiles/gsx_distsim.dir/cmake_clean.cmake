file(REMOVE_RECURSE
  "CMakeFiles/gsx_distsim.dir/distsim.cpp.o"
  "CMakeFiles/gsx_distsim.dir/distsim.cpp.o.d"
  "libgsx_distsim.a"
  "libgsx_distsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsx_distsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
