# Empty compiler generated dependencies file for gsx_distsim.
# This may be replaced when dependencies are built.
