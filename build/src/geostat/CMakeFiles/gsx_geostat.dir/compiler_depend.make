# Empty compiler generated dependencies file for gsx_geostat.
# This may be replaced when dependencies are built.
