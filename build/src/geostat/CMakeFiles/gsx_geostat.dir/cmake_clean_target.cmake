file(REMOVE_RECURSE
  "libgsx_geostat.a"
)
