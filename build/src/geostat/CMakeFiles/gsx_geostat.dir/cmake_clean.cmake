file(REMOVE_RECURSE
  "CMakeFiles/gsx_geostat.dir/assemble.cpp.o"
  "CMakeFiles/gsx_geostat.dir/assemble.cpp.o.d"
  "CMakeFiles/gsx_geostat.dir/bivariate.cpp.o"
  "CMakeFiles/gsx_geostat.dir/bivariate.cpp.o.d"
  "CMakeFiles/gsx_geostat.dir/covariance.cpp.o"
  "CMakeFiles/gsx_geostat.dir/covariance.cpp.o.d"
  "CMakeFiles/gsx_geostat.dir/covariance_ext.cpp.o"
  "CMakeFiles/gsx_geostat.dir/covariance_ext.cpp.o.d"
  "CMakeFiles/gsx_geostat.dir/field.cpp.o"
  "CMakeFiles/gsx_geostat.dir/field.cpp.o.d"
  "CMakeFiles/gsx_geostat.dir/likelihood.cpp.o"
  "CMakeFiles/gsx_geostat.dir/likelihood.cpp.o.d"
  "CMakeFiles/gsx_geostat.dir/locations.cpp.o"
  "CMakeFiles/gsx_geostat.dir/locations.cpp.o.d"
  "CMakeFiles/gsx_geostat.dir/prediction.cpp.o"
  "CMakeFiles/gsx_geostat.dir/prediction.cpp.o.d"
  "CMakeFiles/gsx_geostat.dir/variogram.cpp.o"
  "CMakeFiles/gsx_geostat.dir/variogram.cpp.o.d"
  "libgsx_geostat.a"
  "libgsx_geostat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsx_geostat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
