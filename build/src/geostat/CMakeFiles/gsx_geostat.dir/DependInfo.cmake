
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geostat/assemble.cpp" "src/geostat/CMakeFiles/gsx_geostat.dir/assemble.cpp.o" "gcc" "src/geostat/CMakeFiles/gsx_geostat.dir/assemble.cpp.o.d"
  "/root/repo/src/geostat/bivariate.cpp" "src/geostat/CMakeFiles/gsx_geostat.dir/bivariate.cpp.o" "gcc" "src/geostat/CMakeFiles/gsx_geostat.dir/bivariate.cpp.o.d"
  "/root/repo/src/geostat/covariance.cpp" "src/geostat/CMakeFiles/gsx_geostat.dir/covariance.cpp.o" "gcc" "src/geostat/CMakeFiles/gsx_geostat.dir/covariance.cpp.o.d"
  "/root/repo/src/geostat/covariance_ext.cpp" "src/geostat/CMakeFiles/gsx_geostat.dir/covariance_ext.cpp.o" "gcc" "src/geostat/CMakeFiles/gsx_geostat.dir/covariance_ext.cpp.o.d"
  "/root/repo/src/geostat/field.cpp" "src/geostat/CMakeFiles/gsx_geostat.dir/field.cpp.o" "gcc" "src/geostat/CMakeFiles/gsx_geostat.dir/field.cpp.o.d"
  "/root/repo/src/geostat/likelihood.cpp" "src/geostat/CMakeFiles/gsx_geostat.dir/likelihood.cpp.o" "gcc" "src/geostat/CMakeFiles/gsx_geostat.dir/likelihood.cpp.o.d"
  "/root/repo/src/geostat/locations.cpp" "src/geostat/CMakeFiles/gsx_geostat.dir/locations.cpp.o" "gcc" "src/geostat/CMakeFiles/gsx_geostat.dir/locations.cpp.o.d"
  "/root/repo/src/geostat/prediction.cpp" "src/geostat/CMakeFiles/gsx_geostat.dir/prediction.cpp.o" "gcc" "src/geostat/CMakeFiles/gsx_geostat.dir/prediction.cpp.o.d"
  "/root/repo/src/geostat/variogram.cpp" "src/geostat/CMakeFiles/gsx_geostat.dir/variogram.cpp.o" "gcc" "src/geostat/CMakeFiles/gsx_geostat.dir/variogram.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gsx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mathx/CMakeFiles/gsx_mathx.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/gsx_la.dir/DependInfo.cmake"
  "/root/repo/build/src/tile/CMakeFiles/gsx_tile.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/gsx_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
