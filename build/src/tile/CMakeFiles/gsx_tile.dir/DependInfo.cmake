
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tile/sym_tile_matrix.cpp" "src/tile/CMakeFiles/gsx_tile.dir/sym_tile_matrix.cpp.o" "gcc" "src/tile/CMakeFiles/gsx_tile.dir/sym_tile_matrix.cpp.o.d"
  "/root/repo/src/tile/tile.cpp" "src/tile/CMakeFiles/gsx_tile.dir/tile.cpp.o" "gcc" "src/tile/CMakeFiles/gsx_tile.dir/tile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gsx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/gsx_la.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/gsx_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
