# Empty dependencies file for gsx_tile.
# This may be replaced when dependencies are built.
