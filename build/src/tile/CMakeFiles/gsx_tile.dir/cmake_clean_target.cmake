file(REMOVE_RECURSE
  "libgsx_tile.a"
)
