file(REMOVE_RECURSE
  "CMakeFiles/gsx_tile.dir/sym_tile_matrix.cpp.o"
  "CMakeFiles/gsx_tile.dir/sym_tile_matrix.cpp.o.d"
  "CMakeFiles/gsx_tile.dir/tile.cpp.o"
  "CMakeFiles/gsx_tile.dir/tile.cpp.o.d"
  "libgsx_tile.a"
  "libgsx_tile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsx_tile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
