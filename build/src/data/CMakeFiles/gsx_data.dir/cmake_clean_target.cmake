file(REMOVE_RECURSE
  "libgsx_data.a"
)
