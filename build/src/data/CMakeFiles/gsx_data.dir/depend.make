# Empty dependencies file for gsx_data.
# This may be replaced when dependencies are built.
