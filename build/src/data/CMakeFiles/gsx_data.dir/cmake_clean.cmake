file(REMOVE_RECURSE
  "CMakeFiles/gsx_data.dir/dataset.cpp.o"
  "CMakeFiles/gsx_data.dir/dataset.cpp.o.d"
  "CMakeFiles/gsx_data.dir/synthetic.cpp.o"
  "CMakeFiles/gsx_data.dir/synthetic.cpp.o.d"
  "libgsx_data.a"
  "libgsx_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsx_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
