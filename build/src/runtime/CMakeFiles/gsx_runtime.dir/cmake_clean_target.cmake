file(REMOVE_RECURSE
  "libgsx_runtime.a"
)
