file(REMOVE_RECURSE
  "CMakeFiles/gsx_runtime.dir/task_graph.cpp.o"
  "CMakeFiles/gsx_runtime.dir/task_graph.cpp.o.d"
  "CMakeFiles/gsx_runtime.dir/trace_io.cpp.o"
  "CMakeFiles/gsx_runtime.dir/trace_io.cpp.o.d"
  "libgsx_runtime.a"
  "libgsx_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsx_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
