# Empty compiler generated dependencies file for gsx_runtime.
# This may be replaced when dependencies are built.
