file(REMOVE_RECURSE
  "libgsx_common.a"
)
