# Empty dependencies file for gsx_common.
# This may be replaced when dependencies are built.
