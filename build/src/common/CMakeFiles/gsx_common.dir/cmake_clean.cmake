file(REMOVE_RECURSE
  "CMakeFiles/gsx_common.dir/version.cpp.o"
  "CMakeFiles/gsx_common.dir/version.cpp.o.d"
  "libgsx_common.a"
  "libgsx_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsx_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
