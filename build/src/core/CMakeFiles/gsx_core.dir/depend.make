# Empty dependencies file for gsx_core.
# This may be replaced when dependencies are built.
