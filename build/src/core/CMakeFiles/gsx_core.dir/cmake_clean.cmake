file(REMOVE_RECURSE
  "CMakeFiles/gsx_core.dir/model.cpp.o"
  "CMakeFiles/gsx_core.dir/model.cpp.o.d"
  "libgsx_core.a"
  "libgsx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
