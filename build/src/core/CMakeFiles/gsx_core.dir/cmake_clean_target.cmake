file(REMOVE_RECURSE
  "libgsx_core.a"
)
