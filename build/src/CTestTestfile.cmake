# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("mathx")
subdirs("la")
subdirs("runtime")
subdirs("tile")
subdirs("tlr")
subdirs("cholesky")
subdirs("perfmodel")
subdirs("geostat")
subdirs("optim")
subdirs("data")
subdirs("distsim")
subdirs("core")
