file(REMOVE_RECURSE
  "libgsx_tlr.a"
)
