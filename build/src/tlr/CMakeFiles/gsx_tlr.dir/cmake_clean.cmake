file(REMOVE_RECURSE
  "CMakeFiles/gsx_tlr.dir/compression.cpp.o"
  "CMakeFiles/gsx_tlr.dir/compression.cpp.o.d"
  "CMakeFiles/gsx_tlr.dir/lr_kernels.cpp.o"
  "CMakeFiles/gsx_tlr.dir/lr_kernels.cpp.o.d"
  "libgsx_tlr.a"
  "libgsx_tlr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsx_tlr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
