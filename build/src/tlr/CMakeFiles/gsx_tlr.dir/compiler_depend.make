# Empty compiler generated dependencies file for gsx_tlr.
# This may be replaced when dependencies are built.
