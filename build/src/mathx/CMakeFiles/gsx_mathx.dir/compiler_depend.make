# Empty compiler generated dependencies file for gsx_mathx.
# This may be replaced when dependencies are built.
