file(REMOVE_RECURSE
  "libgsx_mathx.a"
)
