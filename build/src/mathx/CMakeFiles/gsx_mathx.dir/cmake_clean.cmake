file(REMOVE_RECURSE
  "CMakeFiles/gsx_mathx.dir/bessel.cpp.o"
  "CMakeFiles/gsx_mathx.dir/bessel.cpp.o.d"
  "CMakeFiles/gsx_mathx.dir/distance.cpp.o"
  "CMakeFiles/gsx_mathx.dir/distance.cpp.o.d"
  "CMakeFiles/gsx_mathx.dir/stats.cpp.o"
  "CMakeFiles/gsx_mathx.dir/stats.cpp.o.d"
  "libgsx_mathx.a"
  "libgsx_mathx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsx_mathx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
