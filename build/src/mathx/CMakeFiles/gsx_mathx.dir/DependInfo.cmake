
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mathx/bessel.cpp" "src/mathx/CMakeFiles/gsx_mathx.dir/bessel.cpp.o" "gcc" "src/mathx/CMakeFiles/gsx_mathx.dir/bessel.cpp.o.d"
  "/root/repo/src/mathx/distance.cpp" "src/mathx/CMakeFiles/gsx_mathx.dir/distance.cpp.o" "gcc" "src/mathx/CMakeFiles/gsx_mathx.dir/distance.cpp.o.d"
  "/root/repo/src/mathx/stats.cpp" "src/mathx/CMakeFiles/gsx_mathx.dir/stats.cpp.o" "gcc" "src/mathx/CMakeFiles/gsx_mathx.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gsx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
