
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/la/convert.cpp" "src/la/CMakeFiles/gsx_la.dir/convert.cpp.o" "gcc" "src/la/CMakeFiles/gsx_la.dir/convert.cpp.o.d"
  "/root/repo/src/la/half_blas.cpp" "src/la/CMakeFiles/gsx_la.dir/half_blas.cpp.o" "gcc" "src/la/CMakeFiles/gsx_la.dir/half_blas.cpp.o.d"
  "/root/repo/src/la/lapack.cpp" "src/la/CMakeFiles/gsx_la.dir/lapack.cpp.o" "gcc" "src/la/CMakeFiles/gsx_la.dir/lapack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gsx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
