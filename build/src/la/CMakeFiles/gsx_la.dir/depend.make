# Empty dependencies file for gsx_la.
# This may be replaced when dependencies are built.
