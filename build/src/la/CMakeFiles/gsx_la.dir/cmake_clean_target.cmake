file(REMOVE_RECURSE
  "libgsx_la.a"
)
