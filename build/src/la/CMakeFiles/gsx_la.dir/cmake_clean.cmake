file(REMOVE_RECURSE
  "CMakeFiles/gsx_la.dir/convert.cpp.o"
  "CMakeFiles/gsx_la.dir/convert.cpp.o.d"
  "CMakeFiles/gsx_la.dir/half_blas.cpp.o"
  "CMakeFiles/gsx_la.dir/half_blas.cpp.o.d"
  "CMakeFiles/gsx_la.dir/lapack.cpp.o"
  "CMakeFiles/gsx_la.dir/lapack.cpp.o.d"
  "libgsx_la.a"
  "libgsx_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsx_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
