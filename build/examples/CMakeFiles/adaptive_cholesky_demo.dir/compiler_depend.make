# Empty compiler generated dependencies file for adaptive_cholesky_demo.
# This may be replaced when dependencies are built.
