file(REMOVE_RECURSE
  "CMakeFiles/adaptive_cholesky_demo.dir/adaptive_cholesky_demo.cpp.o"
  "CMakeFiles/adaptive_cholesky_demo.dir/adaptive_cholesky_demo.cpp.o.d"
  "adaptive_cholesky_demo"
  "adaptive_cholesky_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_cholesky_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
