file(REMOVE_RECURSE
  "CMakeFiles/variogram_check.dir/variogram_check.cpp.o"
  "CMakeFiles/variogram_check.dir/variogram_check.cpp.o.d"
  "variogram_check"
  "variogram_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variogram_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
