# Empty compiler generated dependencies file for variogram_check.
# This may be replaced when dependencies are built.
