# Empty dependencies file for evapotranspiration.
# This may be replaced when dependencies are built.
