file(REMOVE_RECURSE
  "CMakeFiles/evapotranspiration.dir/evapotranspiration.cpp.o"
  "CMakeFiles/evapotranspiration.dir/evapotranspiration.cpp.o.d"
  "evapotranspiration"
  "evapotranspiration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evapotranspiration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
