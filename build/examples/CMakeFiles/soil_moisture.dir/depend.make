# Empty dependencies file for soil_moisture.
# This may be replaced when dependencies are built.
