file(REMOVE_RECURSE
  "CMakeFiles/soil_moisture.dir/soil_moisture.cpp.o"
  "CMakeFiles/soil_moisture.dir/soil_moisture.cpp.o.d"
  "soil_moisture"
  "soil_moisture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soil_moisture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
