# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_simulate "/root/repo/build/tools/gsx_cli" "simulate" "--kernel" "matern" "--n" "200" "--theta" "1,0.1,0.5" "--seed" "3" "--out" "/root/repo/build/tools/cli_train.csv")
set_tests_properties(cli_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_simulate_test_set "/root/repo/build/tools/gsx_cli" "simulate" "--kernel" "matern" "--n" "50" "--theta" "1,0.1,0.5" "--seed" "4" "--out" "/root/repo/build/tools/cli_test.csv")
set_tests_properties(cli_simulate_test_set PROPERTIES  DEPENDS "cli_simulate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_fit "/root/repo/build/tools/gsx_cli" "fit" "--data" "/root/repo/build/tools/cli_train.csv" "--kernel" "matern" "--variant" "tlr" "--tile" "32" "--workers" "2" "--max-evals" "40")
set_tests_properties(cli_fit PROPERTIES  DEPENDS "cli_simulate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_predict "/root/repo/build/tools/gsx_cli" "predict" "--train" "/root/repo/build/tools/cli_train.csv" "--test" "/root/repo/build/tools/cli_test.csv" "--kernel" "matern" "--theta" "1,0.1,0.5" "--variant" "mp" "--out" "/root/repo/build/tools/cli_pred.csv")
set_tests_properties(cli_predict PROPERTIES  DEPENDS "cli_simulate_test_set" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_bad_kernel "/root/repo/build/tools/gsx_cli" "simulate" "--kernel" "nope" "--n" "10" "--theta" "1" "--out" "/tmp/x.csv")
set_tests_properties(cli_rejects_bad_kernel PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
