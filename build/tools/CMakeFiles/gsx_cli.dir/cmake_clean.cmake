file(REMOVE_RECURSE
  "CMakeFiles/gsx_cli.dir/gsx_cli.cpp.o"
  "CMakeFiles/gsx_cli.dir/gsx_cli.cpp.o.d"
  "gsx_cli"
  "gsx_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsx_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
