# Empty compiler generated dependencies file for gsx_cli.
# This may be replaced when dependencies are built.
