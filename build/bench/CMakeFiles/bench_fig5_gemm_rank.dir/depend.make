# Empty dependencies file for bench_fig5_gemm_rank.
# This may be replaced when dependencies are built.
