
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5_gemm_rank.cpp" "bench/CMakeFiles/bench_fig5_gemm_rank.dir/bench_fig5_gemm_rank.cpp.o" "gcc" "bench/CMakeFiles/bench_fig5_gemm_rank.dir/bench_fig5_gemm_rank.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gsx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cholesky/CMakeFiles/gsx_cholesky.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/gsx_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/geostat/CMakeFiles/gsx_geostat.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/gsx_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/gsx_data.dir/DependInfo.cmake"
  "/root/repo/build/src/distsim/CMakeFiles/gsx_distsim.dir/DependInfo.cmake"
  "/root/repo/build/src/tlr/CMakeFiles/gsx_tlr.dir/DependInfo.cmake"
  "/root/repo/build/src/tile/CMakeFiles/gsx_tile.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/gsx_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/gsx_la.dir/DependInfo.cmake"
  "/root/repo/build/src/mathx/CMakeFiles/gsx_mathx.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gsx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
