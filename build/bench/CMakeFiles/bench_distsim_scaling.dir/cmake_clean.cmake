file(REMOVE_RECURSE
  "CMakeFiles/bench_distsim_scaling.dir/bench_distsim_scaling.cpp.o"
  "CMakeFiles/bench_distsim_scaling.dir/bench_distsim_scaling.cpp.o.d"
  "bench_distsim_scaling"
  "bench_distsim_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_distsim_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
