# Empty compiler generated dependencies file for bench_distsim_scaling.
# This may be replaced when dependencies are built.
