# Empty compiler generated dependencies file for bench_ext_bf16.
# This may be replaced when dependencies are built.
