file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_gemm_precisions.dir/bench_fig8_gemm_precisions.cpp.o"
  "CMakeFiles/bench_fig8_gemm_precisions.dir/bench_fig8_gemm_precisions.cpp.o.d"
  "bench_fig8_gemm_precisions"
  "bench_fig8_gemm_precisions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_gemm_precisions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
