# Empty compiler generated dependencies file for bench_fig8_gemm_precisions.
# This may be replaced when dependencies are built.
