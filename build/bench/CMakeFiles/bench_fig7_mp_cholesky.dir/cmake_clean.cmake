file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_mp_cholesky.dir/bench_fig7_mp_cholesky.cpp.o"
  "CMakeFiles/bench_fig7_mp_cholesky.dir/bench_fig7_mp_cholesky.cpp.o.d"
  "bench_fig7_mp_cholesky"
  "bench_fig7_mp_cholesky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_mp_cholesky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
