# Empty compiler generated dependencies file for bench_fig7_mp_cholesky.
# This may be replaced when dependencies are built.
