file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_soil.dir/bench_table1_soil.cpp.o"
  "CMakeFiles/bench_table1_soil.dir/bench_table1_soil.cpp.o.d"
  "bench_table1_soil"
  "bench_table1_soil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_soil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
