file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_et.dir/bench_table2_et.cpp.o"
  "CMakeFiles/bench_table2_et.dir/bench_table2_et.cpp.o.d"
  "bench_table2_et"
  "bench_table2_et.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_et.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
