file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_boxplots.dir/bench_fig6_boxplots.cpp.o"
  "CMakeFiles/bench_fig6_boxplots.dir/bench_fig6_boxplots.cpp.o.d"
  "bench_fig6_boxplots"
  "bench_fig6_boxplots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_boxplots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
