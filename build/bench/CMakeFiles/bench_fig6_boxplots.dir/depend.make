# Empty dependencies file for bench_fig6_boxplots.
# This may be replaced when dependencies are built.
