file(REMOVE_RECURSE
  "CMakeFiles/bench_pso_weakscale.dir/bench_pso_weakscale.cpp.o"
  "CMakeFiles/bench_pso_weakscale.dir/bench_pso_weakscale.cpp.o.d"
  "bench_pso_weakscale"
  "bench_pso_weakscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pso_weakscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
