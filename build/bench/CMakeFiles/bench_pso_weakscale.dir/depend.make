# Empty dependencies file for bench_pso_weakscale.
# This may be replaced when dependencies are built.
