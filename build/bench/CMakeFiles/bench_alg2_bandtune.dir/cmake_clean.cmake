file(REMOVE_RECURSE
  "CMakeFiles/bench_alg2_bandtune.dir/bench_alg2_bandtune.cpp.o"
  "CMakeFiles/bench_alg2_bandtune.dir/bench_alg2_bandtune.cpp.o.d"
  "bench_alg2_bandtune"
  "bench_alg2_bandtune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alg2_bandtune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
