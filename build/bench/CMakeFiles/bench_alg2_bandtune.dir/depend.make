# Empty dependencies file for bench_alg2_bandtune.
# This may be replaced when dependencies are built.
