# Empty compiler generated dependencies file for bench_fig10_tts_space.
# This may be replaced when dependencies are built.
