file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_heatmaps.dir/bench_fig9_heatmaps.cpp.o"
  "CMakeFiles/bench_fig9_heatmaps.dir/bench_fig9_heatmaps.cpp.o.d"
  "bench_fig9_heatmaps"
  "bench_fig9_heatmaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_heatmaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
