# Empty dependencies file for bench_fig9_heatmaps.
# This may be replaced when dependencies are built.
