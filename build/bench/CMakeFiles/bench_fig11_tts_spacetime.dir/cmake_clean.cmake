file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_tts_spacetime.dir/bench_fig11_tts_spacetime.cpp.o"
  "CMakeFiles/bench_fig11_tts_spacetime.dir/bench_fig11_tts_spacetime.cpp.o.d"
  "bench_fig11_tts_spacetime"
  "bench_fig11_tts_spacetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_tts_spacetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
