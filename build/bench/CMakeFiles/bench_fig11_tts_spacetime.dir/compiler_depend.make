# Empty compiler generated dependencies file for bench_fig11_tts_spacetime.
# This may be replaced when dependencies are built.
