file(REMOVE_RECURSE
  "CMakeFiles/test_cholesky_tlr.dir/test_cholesky_tlr.cpp.o"
  "CMakeFiles/test_cholesky_tlr.dir/test_cholesky_tlr.cpp.o.d"
  "test_cholesky_tlr"
  "test_cholesky_tlr.pdb"
  "test_cholesky_tlr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cholesky_tlr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
