# Empty compiler generated dependencies file for test_cholesky_tlr.
# This may be replaced when dependencies are built.
