file(REMOVE_RECURSE
  "CMakeFiles/test_cholesky_dense.dir/test_cholesky_dense.cpp.o"
  "CMakeFiles/test_cholesky_dense.dir/test_cholesky_dense.cpp.o.d"
  "test_cholesky_dense"
  "test_cholesky_dense.pdb"
  "test_cholesky_dense[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cholesky_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
