# Empty dependencies file for test_cholesky_dense.
# This may be replaced when dependencies are built.
