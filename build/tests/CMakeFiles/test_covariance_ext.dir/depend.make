# Empty dependencies file for test_covariance_ext.
# This may be replaced when dependencies are built.
