file(REMOVE_RECURSE
  "CMakeFiles/test_covariance_ext.dir/test_covariance_ext.cpp.o"
  "CMakeFiles/test_covariance_ext.dir/test_covariance_ext.cpp.o.d"
  "test_covariance_ext"
  "test_covariance_ext.pdb"
  "test_covariance_ext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_covariance_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
