# Empty compiler generated dependencies file for test_tile_krige.
# This may be replaced when dependencies are built.
