file(REMOVE_RECURSE
  "CMakeFiles/test_tile_krige.dir/test_tile_krige.cpp.o"
  "CMakeFiles/test_tile_krige.dir/test_tile_krige.cpp.o.d"
  "test_tile_krige"
  "test_tile_krige.pdb"
  "test_tile_krige[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tile_krige.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
