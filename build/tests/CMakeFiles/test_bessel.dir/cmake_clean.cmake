file(REMOVE_RECURSE
  "CMakeFiles/test_bessel.dir/test_bessel.cpp.o"
  "CMakeFiles/test_bessel.dir/test_bessel.cpp.o.d"
  "test_bessel"
  "test_bessel.pdb"
  "test_bessel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bessel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
