# Empty compiler generated dependencies file for test_bessel.
# This may be replaced when dependencies are built.
