# Empty compiler generated dependencies file for test_rrqr.
# This may be replaced when dependencies are built.
