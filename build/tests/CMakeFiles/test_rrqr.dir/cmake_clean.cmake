file(REMOVE_RECURSE
  "CMakeFiles/test_rrqr.dir/test_rrqr.cpp.o"
  "CMakeFiles/test_rrqr.dir/test_rrqr.cpp.o.d"
  "test_rrqr"
  "test_rrqr.pdb"
  "test_rrqr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rrqr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
