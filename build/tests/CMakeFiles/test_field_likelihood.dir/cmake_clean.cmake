file(REMOVE_RECURSE
  "CMakeFiles/test_field_likelihood.dir/test_field_likelihood.cpp.o"
  "CMakeFiles/test_field_likelihood.dir/test_field_likelihood.cpp.o.d"
  "test_field_likelihood"
  "test_field_likelihood.pdb"
  "test_field_likelihood[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_field_likelihood.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
