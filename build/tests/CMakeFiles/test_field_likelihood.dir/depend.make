# Empty dependencies file for test_field_likelihood.
# This may be replaced when dependencies are built.
