file(REMOVE_RECURSE
  "CMakeFiles/test_tile_solve.dir/test_tile_solve.cpp.o"
  "CMakeFiles/test_tile_solve.dir/test_tile_solve.cpp.o.d"
  "test_tile_solve"
  "test_tile_solve.pdb"
  "test_tile_solve[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tile_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
