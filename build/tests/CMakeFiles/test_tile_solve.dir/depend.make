# Empty dependencies file for test_tile_solve.
# This may be replaced when dependencies are built.
