# Empty dependencies file for test_covariance.
# This may be replaced when dependencies are built.
