file(REMOVE_RECURSE
  "CMakeFiles/test_covariance.dir/test_covariance.cpp.o"
  "CMakeFiles/test_covariance.dir/test_covariance.cpp.o.d"
  "test_covariance"
  "test_covariance.pdb"
  "test_covariance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_covariance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
