file(REMOVE_RECURSE
  "CMakeFiles/test_span2d_precision.dir/test_span2d_precision.cpp.o"
  "CMakeFiles/test_span2d_precision.dir/test_span2d_precision.cpp.o.d"
  "test_span2d_precision"
  "test_span2d_precision.pdb"
  "test_span2d_precision[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_span2d_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
