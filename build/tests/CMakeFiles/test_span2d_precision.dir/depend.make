# Empty dependencies file for test_span2d_precision.
# This may be replaced when dependencies are built.
