file(REMOVE_RECURSE
  "CMakeFiles/test_factor_properties.dir/test_factor_properties.cpp.o"
  "CMakeFiles/test_factor_properties.dir/test_factor_properties.cpp.o.d"
  "test_factor_properties"
  "test_factor_properties.pdb"
  "test_factor_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_factor_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
