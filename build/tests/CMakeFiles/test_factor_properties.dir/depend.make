# Empty dependencies file for test_factor_properties.
# This may be replaced when dependencies are built.
