file(REMOVE_RECURSE
  "CMakeFiles/test_lr_kernels.dir/test_lr_kernels.cpp.o"
  "CMakeFiles/test_lr_kernels.dir/test_lr_kernels.cpp.o.d"
  "test_lr_kernels"
  "test_lr_kernels.pdb"
  "test_lr_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lr_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
