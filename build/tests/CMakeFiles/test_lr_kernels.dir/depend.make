# Empty dependencies file for test_lr_kernels.
# This may be replaced when dependencies are built.
