file(REMOVE_RECURSE
  "CMakeFiles/test_variogram.dir/test_variogram.cpp.o"
  "CMakeFiles/test_variogram.dir/test_variogram.cpp.o.d"
  "test_variogram"
  "test_variogram.pdb"
  "test_variogram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_variogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
