# Empty dependencies file for test_variogram.
# This may be replaced when dependencies are built.
