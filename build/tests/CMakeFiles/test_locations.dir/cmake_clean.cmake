file(REMOVE_RECURSE
  "CMakeFiles/test_locations.dir/test_locations.cpp.o"
  "CMakeFiles/test_locations.dir/test_locations.cpp.o.d"
  "test_locations"
  "test_locations.pdb"
  "test_locations[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_locations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
