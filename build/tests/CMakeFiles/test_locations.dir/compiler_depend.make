# Empty compiler generated dependencies file for test_locations.
# This may be replaced when dependencies are built.
