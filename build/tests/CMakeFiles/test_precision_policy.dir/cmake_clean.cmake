file(REMOVE_RECURSE
  "CMakeFiles/test_precision_policy.dir/test_precision_policy.cpp.o"
  "CMakeFiles/test_precision_policy.dir/test_precision_policy.cpp.o.d"
  "test_precision_policy"
  "test_precision_policy.pdb"
  "test_precision_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_precision_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
