# Empty compiler generated dependencies file for test_model_integration.
# This may be replaced when dependencies are built.
