file(REMOVE_RECURSE
  "CMakeFiles/test_model_integration.dir/test_model_integration.cpp.o"
  "CMakeFiles/test_model_integration.dir/test_model_integration.cpp.o.d"
  "test_model_integration"
  "test_model_integration.pdb"
  "test_model_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
