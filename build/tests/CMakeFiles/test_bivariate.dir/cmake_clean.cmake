file(REMOVE_RECURSE
  "CMakeFiles/test_bivariate.dir/test_bivariate.cpp.o"
  "CMakeFiles/test_bivariate.dir/test_bivariate.cpp.o.d"
  "test_bivariate"
  "test_bivariate.pdb"
  "test_bivariate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bivariate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
