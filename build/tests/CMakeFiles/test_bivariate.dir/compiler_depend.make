# Empty compiler generated dependencies file for test_bivariate.
# This may be replaced when dependencies are built.
